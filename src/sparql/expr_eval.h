#ifndef RDFA_SPARQL_EXPR_EVAL_H_
#define RDFA_SPARQL_EXPR_EVAL_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term_table.h"
#include "sparql/ast.h"
#include "sparql/value.h"

namespace rdfa::sparql {

/// Maps variable names to dense slot indexes inside bindings.
class VarTable {
 public:
  /// Slot of `name`, allocating it if new.
  int IdOf(const std::string& name);
  /// Slot of `name` or -1 if never seen.
  int Find(const std::string& name) const;
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, int> index_;
  std::vector<std::string> names_;
};

/// One solution row: slot -> TermId; kNoTermId means unbound.
using Binding = std::vector<rdf::TermId>;

/// Everything an expression needs at evaluation time. `terms` is mutable
/// because projection/BIND may intern freshly computed literals.
/// `agg_values`, when set, supplies precomputed per-group values for
/// aggregate nodes (keyed by AST node identity). `exists_eval`, when set,
/// evaluates EXISTS { ... } subpatterns against the current row (wired up
/// by the executor; without it EXISTS yields an error value).
struct EvalContext {
  rdf::TermTable* terms = nullptr;
  const VarTable* vars = nullptr;
  const std::map<const Expr*, Value>* agg_values = nullptr;
  const std::function<bool(const GraphPattern&, const Binding&)>* exists_eval =
      nullptr;
};

/// Evaluates `expr` over `binding`. Evaluation errors and unbound variables
/// both yield Value::Unbound() (SPARQL type errors collapse to
/// false-in-filters, which is how the callers consume them).
Value EvalExpr(const Expr& expr, const Binding& binding,
               const EvalContext& ctx);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_EXPR_EVAL_H_
