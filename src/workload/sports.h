#ifndef RDFA_WORKLOAD_SPORTS_H_
#define RDFA_WORKLOAD_SPORTS_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfa::workload {

/// Namespace of the sports example (§3.2.3: "total goals and clean sheets
/// of players of Spanish and England UEFA Champions League teams from 2021
/// to 2022").
inline constexpr char kSportsNs[] = "http://www.ics.forth.gr/sports#";

/// Options for the football knowledge graph generator: players belong to
/// teams, teams play in leagues of countries, players have per-season
/// goals, cleanSheets, appearances and a position.
struct SportsOptions {
  size_t players = 500;
  size_t teams = 20;
  uint64_t seed = 99;
};

/// Generates the football KG. Leagues: LaLiga (Spain), PremierLeague
/// (England), SerieA (Italy), Bundesliga (Germany); seasons 2020-2022;
/// positions Goalkeeper/Defender/Midfielder/Forward. Deterministic per
/// seed. Returns triples added.
size_t GenerateSportsKg(rdf::Graph* graph, const SportsOptions& options);

}  // namespace rdfa::workload

#endif  // RDFA_WORKLOAD_SPORTS_H_
