#include "workload/csv_import.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::workload {

using rdf::Term;

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else if (c == '\n') {
        return Status::ParseError("csv: newline inside quoted field");
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;
      case '\n':
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        break;
      default:
        field += c;
    }
  }
  if (in_quotes) return Status::ParseError("csv: unterminated quote");
  if (!field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

Term CellToTerm(const std::string& cell) {
  if (cell.empty()) return Term::Literal("");
  char* end = nullptr;
  long long i = std::strtoll(cell.c_str(), &end, 10);
  if (end != nullptr && *end == '\0') return Term::Integer(i);
  end = nullptr;
  double d = std::strtod(cell.c_str(), &end);
  if (end != nullptr && *end == '\0') return Term::Double(d);
  return Term::Literal(cell);
}

}  // namespace

Result<size_t> ImportCsv(std::string_view text, const std::string& ns,
                         rdf::Graph* graph) {
  RDFA_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.size() < 2) {
    return Status::InvalidArgument("csv needs a header and >=1 data row");
  }
  const std::vector<std::string>& header = rows[0];
  Term row_class = Term::Iri(ns + "Row");
  Term type = Term::Iri(rdf::rdfns::kType);
  size_t added = 0;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::ParseError("csv row " + std::to_string(r + 1) +
                                " has wrong arity");
    }
    Term entity = Term::Iri(ns + "row" + std::to_string(r));
    if (graph->Add(entity, type, row_class)) ++added;
    for (size_t c = 0; c < header.size(); ++c) {
      std::string name(TrimWhitespace(header[c]));
      if (name.empty()) continue;
      if (rows[r][c].empty()) continue;
      if (graph->Add(entity, Term::Iri(ns + name), CellToTerm(rows[r][c]))) {
        ++added;
      }
    }
  }
  return added;
}

}  // namespace rdfa::workload
