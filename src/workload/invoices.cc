#include "workload/invoices.h"

#include <cstdio>
#include <random>
#include <vector>

#include "rdf/namespaces.h"

namespace rdfa::workload {

using rdf::Term;

namespace {

const std::string kNs = kInvoiceNs;

Term Inv(const std::string& local) { return Term::Iri(kNs + local); }
Term Type() { return Term::Iri(rdf::rdfns::kType); }

void AddSchema(rdf::Graph* g) {
  Term rdfs_class = Term::Iri(rdf::rdfsns::kClass);
  Term rdf_property = Term::Iri(rdf::rdfns::kProperty);
  Term domain = Term::Iri(rdf::rdfsns::kDomain);
  Term range = Term::Iri(rdf::rdfsns::kRange);
  for (const char* c : {"Invoice", "Branch", "Product", "Brand"}) {
    g->Add(Inv(c), Type(), rdfs_class);
  }
  struct P {
    const char* name;
    const char* dom;
    const char* rng;
  };
  const P props[] = {
      {"hasDate", "Invoice", nullptr},
      {"takesPlaceAt", "Invoice", "Branch"},
      {"delivers", "Invoice", "Product"},
      {"inQuantity", "Invoice", nullptr},
      {"brand", "Product", "Brand"},
  };
  for (const P& p : props) {
    g->Add(Inv(p.name), Type(), rdf_property);
    if (p.dom != nullptr) g->Add(Inv(p.name), domain, Inv(p.dom));
    if (p.rng != nullptr) g->Add(Inv(p.name), range, Inv(p.rng));
  }
}

}  // namespace

void BuildInvoicesExample(rdf::Graph* g) {
  AddSchema(g);
  for (const char* b : {"b1", "b2", "b3"}) g->Add(Inv(b), Type(), Inv("Branch"));
  for (const char* br : {"BrandA", "BrandB"}) {
    g->Add(Inv(br), Type(), Inv("Brand"));
  }
  g->Add(Inv("p1"), Type(), Inv("Product"));
  g->Add(Inv("p2"), Type(), Inv("Product"));
  g->Add(Inv("p1"), Inv("brand"), Inv("BrandA"));
  g->Add(Inv("p2"), Inv("brand"), Inv("BrandB"));

  struct Row {
    const char* id;
    const char* branch;
    int qty;
    const char* product;
    const char* date;
  };
  // Quantities per §2.5: b1 = 200+100, b2 = 200+400, b3 = 100+400+100.
  const Row rows[] = {
      {"d1", "b1", 200, "p1", "2021-01-05T00:00:00"},
      {"d2", "b1", 100, "p2", "2021-01-12T00:00:00"},
      {"d3", "b2", 200, "p1", "2021-01-20T00:00:00"},
      {"d4", "b2", 400, "p2", "2021-02-03T00:00:00"},
      {"d5", "b3", 100, "p1", "2021-02-10T00:00:00"},
      {"d6", "b3", 400, "p2", "2021-02-17T00:00:00"},
      {"d7", "b3", 100, "p1", "2021-03-02T00:00:00"},
  };
  for (const Row& r : rows) {
    g->Add(Inv(r.id), Type(), Inv("Invoice"));
    g->Add(Inv(r.id), Inv("takesPlaceAt"), Inv(r.branch));
    g->Add(Inv(r.id), Inv("inQuantity"), Term::Integer(r.qty));
    g->Add(Inv(r.id), Inv("delivers"), Inv(r.product));
    g->Add(Inv(r.id), Inv("hasDate"), Term::DateTime(r.date));
  }
}

size_t GenerateInvoices(rdf::Graph* g, const InvoicesOptions& opt) {
  size_t before = g->size();
  AddSchema(g);
  std::mt19937_64 rng(opt.seed);
  auto uniform = [&](size_t n) {
    return static_cast<size_t>(rng() % std::max<size_t>(n, 1));
  };

  std::vector<std::string> brands;
  for (size_t i = 0; i < opt.brands; ++i) {
    std::string name = "brand" + std::to_string(i);
    brands.push_back(name);
    g->Add(Inv(name), Type(), Inv("Brand"));
  }
  std::vector<std::string> products;
  for (size_t i = 0; i < opt.products; ++i) {
    std::string name = "product" + std::to_string(i);
    products.push_back(name);
    g->Add(Inv(name), Type(), Inv("Product"));
    g->Add(Inv(name), Inv("brand"), Inv(brands[uniform(brands.size())]));
  }
  std::vector<std::string> branches;
  for (size_t i = 0; i < opt.branches; ++i) {
    std::string name = "branch" + std::to_string(i);
    branches.push_back(name);
    g->Add(Inv(name), Type(), Inv("Branch"));
  }
  for (size_t i = 0; i < opt.invoices; ++i) {
    std::string name = "inv" + std::to_string(i);
    g->Add(Inv(name), Type(), Inv("Invoice"));
    g->Add(Inv(name), Inv("takesPlaceAt"),
           Inv(branches[uniform(branches.size())]));
    g->Add(Inv(name), Inv("delivers"), Inv(products[uniform(products.size())]));
    g->Add(Inv(name), Inv("inQuantity"),
           Term::Integer(1 + static_cast<int64_t>(uniform(500))));
    int month = 1 + static_cast<int>(uniform(12));
    int day = 1 + static_cast<int>(uniform(28));
    char date[32];
    std::snprintf(date, sizeof(date), "2021-%02d-%02dT00:00:00", month, day);
    g->Add(Inv(name), Inv("hasDate"), Term::DateTime(date));
  }
  return g->size() - before;
}

}  // namespace rdfa::workload
