#ifndef RDFA_WORKLOAD_CSV_IMPORT_H_
#define RDFA_WORKLOAD_CSV_IMPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::workload {

/// Parses simple CSV (comma separator, optional double-quoting with ""
/// escapes, no embedded newlines). Returns rows including the header.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Imports statistical CSV data as RDF, the way system (1b) of the
/// dissertation lets users upload .csv files: the header names become
/// properties `<ns><header>`, each data row becomes an entity
/// `<ns>row<i>` typed `<ns>Row`, and cells become literals (numeric cells
/// typed xsd:integer/xsd:double). Returns the number of triples added.
Result<size_t> ImportCsv(std::string_view text, const std::string& ns,
                         rdf::Graph* graph);

}  // namespace rdfa::workload

#endif  // RDFA_WORKLOAD_CSV_IMPORT_H_
