#include "workload/sports.h"

#include <random>
#include <vector>

#include "rdf/namespaces.h"

namespace rdfa::workload {

using rdf::Term;

namespace {

const std::string kNs = kSportsNs;

Term Sp(const std::string& local) { return Term::Iri(kNs + local); }
Term Type() { return Term::Iri(rdf::rdfns::kType); }

void AddSchema(rdf::Graph* g) {
  Term rdfs_class = Term::Iri(rdf::rdfsns::kClass);
  Term rdf_property = Term::Iri(rdf::rdfns::kProperty);
  Term domain = Term::Iri(rdf::rdfsns::kDomain);
  Term range = Term::Iri(rdf::rdfsns::kRange);
  for (const char* c : {"Player", "Team", "League", "Country", "Season",
                        "Position"}) {
    g->Add(Sp(c), Type(), rdfs_class);
  }
  struct P {
    const char* name;
    const char* dom;
    const char* rng;
  };
  const P props[] = {
      {"playsFor", "Player", "Team"},
      {"position", "Player", "Position"},
      {"goals", "Player", nullptr},
      {"cleanSheets", "Player", nullptr},
      {"appearances", "Player", nullptr},
      {"season", "Player", "Season"},
      {"inLeague", "Team", "League"},
      {"leagueCountry", "League", "Country"},
  };
  for (const P& p : props) {
    g->Add(Sp(p.name), Type(), rdf_property);
    if (p.dom != nullptr) g->Add(Sp(p.name), domain, Sp(p.dom));
    if (p.rng != nullptr) g->Add(Sp(p.name), range, Sp(p.rng));
  }
}

}  // namespace

size_t GenerateSportsKg(rdf::Graph* g, const SportsOptions& opt) {
  size_t before = g->size();
  AddSchema(g);
  std::mt19937_64 rng(opt.seed);
  auto uniform = [&](size_t n) {
    return static_cast<size_t>(rng() % std::max<size_t>(n, 1));
  };

  struct LeagueDef {
    const char* league;
    const char* country;
  };
  const LeagueDef leagues[] = {
      {"LaLiga", "Spain"},
      {"PremierLeague", "England"},
      {"SerieA", "Italy"},
      {"Bundesliga", "Germany"},
  };
  for (const LeagueDef& l : leagues) {
    g->Add(Sp(l.league), Type(), Sp("League"));
    g->Add(Sp(l.country), Type(), Sp("Country"));
    g->Add(Sp(l.league), Sp("leagueCountry"), Sp(l.country));
  }
  const char* seasons[] = {"season2020", "season2021", "season2022"};
  for (const char* s : seasons) g->Add(Sp(s), Type(), Sp("Season"));
  const char* positions[] = {"Goalkeeper", "Defender", "Midfielder",
                             "Forward"};
  for (const char* p : positions) g->Add(Sp(p), Type(), Sp("Position"));

  std::vector<std::string> teams;
  for (size_t i = 0; i < opt.teams; ++i) {
    std::string name = "team" + std::to_string(i);
    teams.push_back(name);
    g->Add(Sp(name), Type(), Sp("Team"));
    g->Add(Sp(name), Sp("inLeague"), Sp(leagues[i % 4].league));
  }

  // A "player" here is one player-season observation (how football stats
  // datasets publish them) — functional attributes, as HIFUN needs.
  for (size_t i = 0; i < opt.players; ++i) {
    std::string name = "playerSeason" + std::to_string(i);
    g->Add(Sp(name), Type(), Sp("Player"));
    g->Add(Sp(name), Sp("playsFor"), Sp(teams[uniform(teams.size())]));
    size_t pos = uniform(4);
    g->Add(Sp(name), Sp("position"), Sp(positions[pos]));
    g->Add(Sp(name), Sp("season"), Sp(seasons[uniform(3)]));
    // Forwards score more, goalkeepers keep clean sheets.
    int64_t goals = pos == 3   ? static_cast<int64_t>(uniform(30))
                    : pos == 2 ? static_cast<int64_t>(uniform(12))
                    : pos == 1 ? static_cast<int64_t>(uniform(5))
                               : 0;
    int64_t clean_sheets =
        pos == 0 ? static_cast<int64_t>(uniform(20)) : 0;
    g->Add(Sp(name), Sp("goals"), Term::Integer(goals));
    g->Add(Sp(name), Sp("cleanSheets"), Term::Integer(clean_sheets));
    g->Add(Sp(name), Sp("appearances"),
           Term::Integer(1 + static_cast<int64_t>(uniform(38))));
  }
  return g->size() - before;
}

}  // namespace rdfa::workload
