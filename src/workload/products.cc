#include "workload/products.h"

#include <random>
#include <vector>

#include "rdf/namespaces.h"

namespace rdfa::workload {

using rdf::Term;

namespace {

const std::string kNs = kExampleNs;

Term Ex(const std::string& local) { return Term::Iri(kNs + local); }
Term Type() { return Term::Iri(rdf::rdfns::kType); }
Term SubClassOf() { return Term::Iri(rdf::rdfsns::kSubClassOf); }
Term Domain() { return Term::Iri(rdf::rdfsns::kDomain); }
Term Range() { return Term::Iri(rdf::rdfsns::kRange); }
Term RdfsClass() { return Term::Iri(rdf::rdfsns::kClass); }
Term RdfProperty() { return Term::Iri(rdf::rdfns::kProperty); }

void AddSchema(rdf::Graph* g) {
  // Classes of Fig 1.2 / 5.4.
  for (const char* c : {"Product", "Laptop", "HDType", "SSD", "NVMe", "HDD",
                        "Company", "Person", "Location", "Country",
                        "Continent"}) {
    g->Add(Ex(c), Type(), RdfsClass());
  }
  g->Add(Ex("Laptop"), SubClassOf(), Ex("Product"));
  g->Add(Ex("HDType"), SubClassOf(), Ex("Product"));
  g->Add(Ex("SSD"), SubClassOf(), Ex("HDType"));
  g->Add(Ex("NVMe"), SubClassOf(), Ex("HDType"));
  g->Add(Ex("HDD"), SubClassOf(), Ex("HDType"));
  g->Add(Ex("Country"), SubClassOf(), Ex("Location"));
  g->Add(Ex("Continent"), SubClassOf(), Ex("Location"));

  struct Prop {
    const char* name;
    const char* domain;
    const char* range;
  };
  const Prop props[] = {
      {"manufacturer", "Product", "Company"},
      {"hardDrive", "Laptop", "HDType"},
      {"price", "Product", nullptr},
      {"USBPorts", "Laptop", nullptr},
      {"releaseDate", "Product", nullptr},
      {"origin", "Company", "Country"},
      {"founder", "Company", "Person"},
      {"birthplace", "Person", "Country"},
      {"locatedAt", "Country", "Continent"},
      {"size", "Country", nullptr},
      {"GDPPerCapita", "Country", nullptr},
  };
  for (const Prop& p : props) {
    g->Add(Ex(p.name), Type(), RdfProperty());
    if (p.domain != nullptr) g->Add(Ex(p.name), Domain(), Ex(p.domain));
    if (p.range != nullptr) g->Add(Ex(p.name), Range(), Ex(p.range));
  }
}

}  // namespace

void BuildRunningExample(rdf::Graph* g) {
  AddSchema(g);

  // Continents / countries (Fig 5.4: Location (5) = 2 continents + 3
  // countries).
  g->Add(Ex("NorthAmerica"), Type(), Ex("Continent"));
  g->Add(Ex("Asia"), Type(), Ex("Continent"));
  for (const char* c : {"USA", "China", "Singapore"}) {
    g->Add(Ex(c), Type(), Ex("Country"));
  }
  g->Add(Ex("USA"), Ex("locatedAt"), Ex("NorthAmerica"));
  g->Add(Ex("China"), Ex("locatedAt"), Ex("Asia"));
  g->Add(Ex("Singapore"), Ex("locatedAt"), Ex("Asia"));
  g->Add(Ex("USA"), Ex("GDPPerCapita"), Term::Integer(76399));
  g->Add(Ex("China"), Ex("GDPPerCapita"), Term::Integer(12720));
  g->Add(Ex("Singapore"), Ex("GDPPerCapita"), Term::Integer(82808));

  // Companies (Fig 5.4: Company (4)).
  g->Add(Ex("DELL"), Type(), Ex("Company"));
  g->Add(Ex("Lenovo"), Type(), Ex("Company"));
  g->Add(Ex("Maxtor"), Type(), Ex("Company"));
  g->Add(Ex("AVDElectronics"), Type(), Ex("Company"));
  g->Add(Ex("DELL"), Ex("origin"), Ex("USA"));
  g->Add(Ex("Lenovo"), Ex("origin"), Ex("China"));
  g->Add(Ex("Maxtor"), Ex("origin"), Ex("Singapore"));
  g->Add(Ex("AVDElectronics"), Ex("origin"), Ex("USA"));

  // Founders (Person (3)).
  g->Add(Ex("MichaelDell"), Type(), Ex("Person"));
  g->Add(Ex("LiuChuanzhi"), Type(), Ex("Person"));
  g->Add(Ex("JamesMcCoy"), Type(), Ex("Person"));
  g->Add(Ex("DELL"), Ex("founder"), Ex("MichaelDell"));
  g->Add(Ex("Lenovo"), Ex("founder"), Ex("LiuChuanzhi"));
  g->Add(Ex("Maxtor"), Ex("founder"), Ex("JamesMcCoy"));
  g->Add(Ex("MichaelDell"), Ex("birthplace"), Ex("USA"));
  g->Add(Ex("LiuChuanzhi"), Ex("birthplace"), Ex("China"));
  g->Add(Ex("JamesMcCoy"), Ex("birthplace"), Ex("USA"));

  // Hard drives (HDType (3): SSD (2), NVMe (1)).
  g->Add(Ex("SSD1"), Type(), Ex("SSD"));
  g->Add(Ex("SSD2"), Type(), Ex("SSD"));
  g->Add(Ex("NVMe1"), Type(), Ex("NVMe"));
  g->Add(Ex("SSD1"), Ex("manufacturer"), Ex("Maxtor"));
  g->Add(Ex("SSD2"), Ex("manufacturer"), Ex("AVDElectronics"));
  g->Add(Ex("NVMe1"), Ex("manufacturer"), Ex("Maxtor"));

  // Laptops (Fig 5.4: Laptop (3), by manufacturer DELL (2) / Lenovo (1);
  // release dates and USB ports as in Fig 5.4c).
  g->Add(Ex("laptop1"), Type(), Ex("Laptop"));
  g->Add(Ex("laptop2"), Type(), Ex("Laptop"));
  g->Add(Ex("laptop3"), Type(), Ex("Laptop"));
  g->Add(Ex("laptop1"), Ex("manufacturer"), Ex("DELL"));
  g->Add(Ex("laptop2"), Ex("manufacturer"), Ex("DELL"));
  g->Add(Ex("laptop3"), Ex("manufacturer"), Ex("Lenovo"));
  g->Add(Ex("laptop1"), Ex("releaseDate"),
         Term::DateTime("2021-06-10T00:00:00"));
  g->Add(Ex("laptop2"), Ex("releaseDate"),
         Term::DateTime("2021-09-03T00:00:00"));
  g->Add(Ex("laptop3"), Ex("releaseDate"),
         Term::DateTime("2021-10-10T00:00:00"));
  g->Add(Ex("laptop1"), Ex("USBPorts"), Term::Integer(2));
  g->Add(Ex("laptop2"), Ex("USBPorts"), Term::Integer(2));
  g->Add(Ex("laptop3"), Ex("USBPorts"), Term::Integer(4));
  g->Add(Ex("laptop1"), Ex("hardDrive"), Ex("SSD1"));
  g->Add(Ex("laptop2"), Ex("hardDrive"), Ex("SSD2"));
  g->Add(Ex("laptop3"), Ex("hardDrive"), Ex("NVMe1"));
  g->Add(Ex("laptop1"), Ex("price"), Term::Integer(900));
  g->Add(Ex("laptop2"), Ex("price"), Term::Integer(1000));
  g->Add(Ex("laptop3"), Ex("price"), Term::Integer(820));
}

size_t GenerateProductKg(rdf::Graph* g, const ProductKgOptions& opt) {
  size_t before = g->size();
  AddSchema(g);
  std::mt19937_64 rng(opt.seed);
  auto uniform = [&](size_t n) {
    return static_cast<size_t>(rng() % std::max<size_t>(n, 1));
  };
  auto chance = [&](double p) {
    return static_cast<double>(rng() % 1000000) / 1000000.0 < p;
  };

  const char* continents[] = {"NorthAmerica", "Asia", "Europe"};
  for (const char* c : continents) g->Add(Ex(c), Type(), Ex("Continent"));

  std::vector<std::string> countries;
  for (size_t i = 0; i < opt.countries; ++i) {
    std::string name = "country" + std::to_string(i);
    countries.push_back(name);
    g->Add(Ex(name), Type(), Ex("Country"));
    g->Add(Ex(name), Ex("locatedAt"), Ex(continents[i % 3]));
    g->Add(Ex(name), Ex("GDPPerCapita"),
           Term::Integer(5000 + static_cast<int64_t>(uniform(80000))));
  }

  std::vector<std::string> persons;
  for (size_t i = 0; i < opt.persons; ++i) {
    std::string name = "person" + std::to_string(i);
    persons.push_back(name);
    g->Add(Ex(name), Type(), Ex("Person"));
    g->Add(Ex(name), Ex("birthplace"), Ex(countries[uniform(countries.size())]));
  }

  std::vector<std::string> companies;
  for (size_t i = 0; i < opt.companies; ++i) {
    std::string name = "company" + std::to_string(i);
    companies.push_back(name);
    g->Add(Ex(name), Type(), Ex("Company"));
    g->Add(Ex(name), Ex("origin"), Ex(countries[uniform(countries.size())]));
    g->Add(Ex(name), Ex("founder"), Ex(persons[uniform(persons.size())]));
    if (chance(opt.multi_founder_rate)) {
      g->Add(Ex(name), Ex("founder"), Ex(persons[uniform(persons.size())]));
    }
  }

  const char* hd_classes[] = {"SSD", "NVMe", "HDD"};
  size_t n_drives = std::max<size_t>(opt.laptops / 4, 1);
  std::vector<std::string> drives;
  for (size_t i = 0; i < n_drives; ++i) {
    std::string name = "hd" + std::to_string(i);
    drives.push_back(name);
    g->Add(Ex(name), Type(), Ex(hd_classes[i % 3]));
    g->Add(Ex(name), Ex("manufacturer"),
           Ex(companies[uniform(companies.size())]));
  }

  for (size_t i = 0; i < opt.laptops; ++i) {
    // "laptopg" prefix: never collides with the fixed running example's
    // laptop1..laptop3 so both datasets can coexist in one graph.
    std::string name = "laptopg" + std::to_string(i);
    g->Add(Ex(name), Type(), Ex("Laptop"));
    g->Add(Ex(name), Ex("manufacturer"),
           Ex(companies[uniform(companies.size())]));
    g->Add(Ex(name), Ex("hardDrive"), Ex(drives[uniform(drives.size())]));
    if (!chance(opt.missing_price_rate)) {
      g->Add(Ex(name), Ex("price"),
             Term::Integer(300 + static_cast<int64_t>(uniform(2700))));
    }
    g->Add(Ex(name), Ex("USBPorts"),
           Term::Integer(1 + static_cast<int64_t>(uniform(5))));
    int year = 2018 + static_cast<int>(uniform(6));
    int month = 1 + static_cast<int>(uniform(12));
    int day = 1 + static_cast<int>(uniform(28));
    char date[32];
    std::snprintf(date, sizeof(date), "%04d-%02d-%02dT00:00:00", year, month,
                  day);
    g->Add(Ex(name), Ex("releaseDate"), Term::DateTime(date));
  }
  return g->size() - before;
}

}  // namespace rdfa::workload
