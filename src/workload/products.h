#ifndef RDFA_WORKLOAD_PRODUCTS_H_
#define RDFA_WORKLOAD_PRODUCTS_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace rdfa::workload {

/// Namespace of the running example (Fig 1.2 uses ics.forth.gr/example#).
inline constexpr char kExampleNs[] = "http://www.ics.forth.gr/example#";

/// Builds the small fixed dataset of the dissertation's running example
/// (Figs 1.2, 5.3-5.5): 3 laptops (2 DELL, 1 Lenovo) with prices, release
/// dates, USB ports and hard drives (SSD1, SSD2, NVMe1), companies with
/// origins (USA, China, Singapore), founders, countries and continents,
/// plus the RDFS schema (Product/Laptop/HDType/SSD/NVMe, Company, Person,
/// Location/Country/Continent and the property declarations).
void BuildRunningExample(rdf::Graph* graph);

/// Options for the scalable product-KG generator used by the benchmarks.
struct ProductKgOptions {
  size_t laptops = 1000;
  size_t companies = 20;
  size_t persons = 40;
  size_t countries = 12;
  uint64_t seed = 42;
  /// Fraction of laptops with a missing price (exercises FCO handling);
  /// 0 keeps every attribute total.
  double missing_price_rate = 0.0;
  /// Fraction of companies with two founders (multi-valued property).
  double multi_founder_rate = 0.0;
};

/// Generates a product knowledge graph following the running-example schema
/// at the requested scale. Deterministic for a given seed. Returns the
/// number of triples added.
size_t GenerateProductKg(rdf::Graph* graph, const ProductKgOptions& options);

}  // namespace rdfa::workload

#endif  // RDFA_WORKLOAD_PRODUCTS_H_
