#ifndef RDFA_WORKLOAD_INVOICES_H_
#define RDFA_WORKLOAD_INVOICES_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfa::workload {

/// Namespace of the invoices example (Fig 2.7 / 4.1).
inline constexpr char kInvoiceNs[] = "http://www.ics.forth.gr/invoices#";

/// Builds the seven-invoice dataset of §2.5 exactly: branches b1..b3,
/// quantities (200, 100, 200, 400, 100, 400, 100), products with brands and
/// dates — the expected totals per branch are b1: 300, b2: 600, b3: 600
/// (Fig 2.8).
void BuildInvoicesExample(rdf::Graph* graph);

/// Options for the scalable invoices generator (the distribution-center
/// scenario of §2.5).
struct InvoicesOptions {
  size_t invoices = 10000;
  size_t branches = 20;
  size_t products = 100;
  size_t brands = 12;
  uint64_t seed = 7;
};

/// Generates invoices with hasDate, takesPlaceAt, delivers (a product with a
/// brand) and inQuantity. Deterministic per seed. Returns triples added.
size_t GenerateInvoices(rdf::Graph* graph, const InvoicesOptions& options);

}  // namespace rdfa::workload

#endif  // RDFA_WORKLOAD_INVOICES_H_
