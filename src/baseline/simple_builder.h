#ifndef RDFA_BASELINE_SIMPLE_BUILDER_H_
#define RDFA_BASELINE_SIMPLE_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hifun/attr_expr.h"
#include "rdf/graph.h"
#include "sparql/result_table.h"

namespace rdfa::baseline {

/// A deliberately *reduced* interactive query builder, standing in for the
/// guided-formulation baselines the dissertation compares against in Table
/// 3.5 (the [41]/SPARKLIS-style editors and the SemFacet extension [100]):
///
///   - class selection and direct (single-hop) property constraints only —
///     no property-path expansion;
///   - NO count information on the offered options, and NO never-empty
///     guarantee: a constraint combination may produce an empty result;
///   - basic analytics: group-by on direct properties, one aggregate — but
///     no HAVING, no nesting, no multi-aggregate, no derived attributes.
///
/// The comparison bench runs the paper's task battery on both this baseline
/// and the full interaction model, mechanically regenerating the Table 3.5
/// functionality matrix.
class SimpleQueryBuilder {
 public:
  /// `graph` must outlive the builder.
  explicit SimpleQueryBuilder(rdf::Graph* graph) : graph_(graph) {}

  /// Picks the target class (replaces any previous pick).
  void SelectClass(const std::string& class_iri) { class_iri_ = class_iri; }

  /// Adds a direct property = value constraint. No paths: the property
  /// applies to the target entity itself.
  void AddConstraint(const std::string& property_iri, const rdf::Term& value);

  /// Adds a direct numeric range constraint.
  void AddRangeConstraint(const std::string& property_iri,
                          std::optional<double> min,
                          std::optional<double> max);

  /// Sets a group-by on a direct property (empty = none).
  void SetGroupBy(const std::string& property_iri) { group_by_ = property_iri; }

  /// Sets the (single) aggregate: op over a direct property.
  void SetAggregate(hifun::AggOp op, const std::string& property_iri);

  /// The candidate properties the builder's drop-down would offer for the
  /// selected class — names only, no counts (a Table 3.5 row: "Plain
  /// Faceted Search ... with No Count information").
  std::vector<std::string> CandidateProperties() const;

  /// Builds the SPARQL text for the current choices.
  std::string BuildSparql() const;

  /// Executes. May legitimately return an empty table — the baseline gives
  /// no never-empty guarantee.
  Result<sparql::ResultTable> Execute();

  void Reset();

 private:
  struct Constraint {
    std::string property;
    rdf::Term value;
    bool is_range = false;
    std::optional<double> min;
    std::optional<double> max;
  };

  rdf::Graph* graph_;
  std::string class_iri_;
  std::vector<Constraint> constraints_;
  std::string group_by_;
  std::optional<hifun::AggOp> agg_op_;
  std::string agg_property_;
};

}  // namespace rdfa::baseline

#endif  // RDFA_BASELINE_SIMPLE_BUILDER_H_
