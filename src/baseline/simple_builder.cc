#include "baseline/simple_builder.h"

#include <set>

#include "common/string_util.h"
#include "rdf/namespaces.h"
#include "sparql/executor.h"

namespace rdfa::baseline {

void SimpleQueryBuilder::AddConstraint(const std::string& property_iri,
                                       const rdf::Term& value) {
  Constraint c;
  c.property = property_iri;
  c.value = value;
  constraints_.push_back(std::move(c));
}

void SimpleQueryBuilder::AddRangeConstraint(const std::string& property_iri,
                                            std::optional<double> min,
                                            std::optional<double> max) {
  Constraint c;
  c.property = property_iri;
  c.is_range = true;
  c.min = min;
  c.max = max;
  constraints_.push_back(std::move(c));
}

void SimpleQueryBuilder::SetAggregate(hifun::AggOp op,
                                      const std::string& property_iri) {
  agg_op_ = op;
  agg_property_ = property_iri;
}

std::vector<std::string> SimpleQueryBuilder::CandidateProperties() const {
  std::set<std::string> out;
  rdf::TermId type = graph_->terms().FindIri(rdf::rdfns::kType);
  rdf::TermId cls = graph_->terms().FindIri(class_iri_);
  if (type == rdf::kNoTermId || cls == rdf::kNoTermId) return {};
  graph_->ForEachMatch(rdf::kNoTermId, type, cls, [&](const rdf::TripleId& t) {
    graph_->ForEachMatch(t.s, rdf::kNoTermId, rdf::kNoTermId,
                         [&](const rdf::TripleId& edge) {
                           if (edge.p != type) {
                             out.insert(
                                 graph_->terms().Get(edge.p).lexical());
                           }
                         });
  });
  return {out.begin(), out.end()};
}

std::string SimpleQueryBuilder::BuildSparql() const {
  std::string where;
  int var = 1;
  std::vector<std::string> filters;
  if (!class_iri_.empty()) {
    where += "  ?x <" + std::string(rdf::rdfns::kType) + "> <" + class_iri_ +
             "> .\n";
  }
  for (const Constraint& c : constraints_) {
    if (c.is_range) {
      std::string v = "?v" + std::to_string(++var);
      where += "  ?x <" + c.property + "> " + v + " .\n";
      if (c.min.has_value()) filters.push_back(v + " >= " + FormatNumber(*c.min));
      if (c.max.has_value()) filters.push_back(v + " <= " + FormatNumber(*c.max));
    } else {
      where += "  ?x <" + c.property + "> " + c.value.ToNTriples() + " .\n";
    }
  }

  std::string select = "SELECT ";
  std::string group;
  if (!group_by_.empty()) {
    where += "  ?x <" + group_by_ + "> ?g .\n";
    select += "?g ";
    group = "\nGROUP BY ?g";
  }
  if (agg_op_.has_value()) {
    std::string m = "?x";
    if (!agg_property_.empty()) {
      where += "  ?x <" + agg_property_ + "> ?m .\n";
      m = "?m";
    }
    select += "(" + std::string(AggOpName(*agg_op_)) + "(" + m +
              ") AS ?agg) ";
  } else if (group_by_.empty()) {
    select += "?x ";
  }
  std::string sparql = select + "\nWHERE {\n" + where;
  for (const std::string& f : filters) sparql += "  FILTER(" + f + ") .\n";
  sparql += "}" + group;
  return sparql;
}

Result<sparql::ResultTable> SimpleQueryBuilder::Execute() {
  return sparql::ExecuteQueryString(graph_, BuildSparql());
}

void SimpleQueryBuilder::Reset() {
  class_iri_.clear();
  constraints_.clear();
  group_by_.clear();
  agg_op_.reset();
  agg_property_.clear();
}

}  // namespace rdfa::baseline
