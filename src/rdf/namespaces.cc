#include "rdf/namespaces.h"

#include <cctype>

namespace rdfa::rdf {

PrefixMap::PrefixMap() {
  Register("rdf", rdfns::kPrefix);
  Register("rdfs", rdfsns::kPrefix);
  Register("xsd", xsd::kPrefix);
}

void PrefixMap::Register(std::string prefix, std::string iri_base) {
  prefixes_[std::move(prefix)] = std::move(iri_base);
}

std::optional<std::string> PrefixMap::Expand(std::string_view qname) const {
  size_t colon = qname.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::string prefix(qname.substr(0, colon));
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return std::nullopt;
  return it->second + std::string(qname.substr(colon + 1));
}

std::string PrefixMap::ShrinkOrWrap(std::string_view iri) const {
  const std::string* best_base = nullptr;
  const std::string* best_prefix = nullptr;
  for (const auto& [prefix, base] : prefixes_) {
    if (iri.size() > base.size() && iri.substr(0, base.size()) == base) {
      if (best_base == nullptr || base.size() > best_base->size()) {
        best_base = &base;
        best_prefix = &prefix;
      }
    }
  }
  if (best_base != nullptr) {
    std::string local(iri.substr(best_base->size()));
    // Only shrink if the local part looks like a safe name.
    bool safe = !local.empty();
    for (char c : local) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-' || c == '.')) {
        safe = false;
        break;
      }
    }
    if (safe) return *best_prefix + ":" + local;
  }
  return "<" + std::string(iri) + ">";
}

}  // namespace rdfa::rdf
