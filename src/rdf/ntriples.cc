#include "rdf/ntriples.h"

#include <cctype>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::rdf {

namespace {

// Cursor over one N-Triples line.
struct Cursor {
  std::string_view s;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  bool AtEnd() const { return pos >= s.size(); }
  char Peek() const { return pos < s.size() ? s[pos] : '\0'; }
};

Result<Term> ParseTerm(Cursor* c, int line) {
  c->SkipSpace();
  if (c->AtEnd()) {
    return Status::ParseError("line " + std::to_string(line) +
                              ": unexpected end of triple");
  }
  char ch = c->Peek();
  if (ch == '<') {
    size_t close = c->s.find('>', c->pos);
    if (close == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line) +
                                ": unterminated IRI");
    }
    std::string iri(c->s.substr(c->pos + 1, close - c->pos - 1));
    c->pos = close + 1;
    return Term::Iri(std::move(iri));
  }
  if (ch == '_') {
    if (c->pos + 1 >= c->s.size() || c->s[c->pos + 1] != ':') {
      return Status::ParseError("line " + std::to_string(line) +
                                ": bad blank node");
    }
    size_t start = c->pos + 2;
    size_t end = start;
    while (end < c->s.size() &&
           (std::isalnum(static_cast<unsigned char>(c->s[end])) ||
            c->s[end] == '_' || c->s[end] == '-')) {
      ++end;
    }
    std::string label(c->s.substr(start, end - start));
    c->pos = end;
    return Term::Blank(std::move(label));
  }
  if (ch == '"') {
    // Find the closing quote, honoring backslash escapes.
    size_t i = c->pos + 1;
    while (i < c->s.size()) {
      if (c->s[i] == '\\') {
        i += 2;
        continue;
      }
      if (c->s[i] == '"') break;
      ++i;
    }
    if (i >= c->s.size()) {
      return Status::ParseError("line " + std::to_string(line) +
                                ": unterminated literal");
    }
    std::string lexical = UnescapeLiteral(c->s.substr(c->pos + 1, i - c->pos - 1));
    c->pos = i + 1;
    if (c->Peek() == '@') {
      size_t start = ++c->pos;
      while (c->pos < c->s.size() &&
             (std::isalnum(static_cast<unsigned char>(c->s[c->pos])) ||
              c->s[c->pos] == '-')) {
        ++c->pos;
      }
      return Term::LangLiteral(std::move(lexical),
                               std::string(c->s.substr(start, c->pos - start)));
    }
    if (c->Peek() == '^') {
      if (c->pos + 2 >= c->s.size() || c->s[c->pos + 1] != '^' ||
          c->s[c->pos + 2] != '<') {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": bad datatype suffix");
      }
      size_t close = c->s.find('>', c->pos + 2);
      if (close == std::string_view::npos) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": unterminated datatype IRI");
      }
      std::string dt(c->s.substr(c->pos + 3, close - c->pos - 3));
      c->pos = close + 1;
      return Term::TypedLiteral(std::move(lexical), std::move(dt));
    }
    return Term::Literal(std::move(lexical));
  }
  return Status::ParseError("line " + std::to_string(line) +
                            ": unexpected character '" + std::string(1, ch) +
                            "'");
}

}  // namespace

Status ParseNTriples(std::string_view text, Graph* graph) {
  int line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    Cursor c{trimmed, 0};
    RDFA_ASSIGN_OR_RETURN(Term s, ParseTerm(&c, line_no));
    RDFA_ASSIGN_OR_RETURN(Term p, ParseTerm(&c, line_no));
    RDFA_ASSIGN_OR_RETURN(Term o, ParseTerm(&c, line_no));
    c.SkipSpace();
    if (c.Peek() != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": missing terminating '.'");
    }
    graph->Add(s, p, o);
  }
  return Status::OK();
}

Result<Term> ParseNTriplesTerm(std::string_view text) {
  Cursor c{TrimWhitespace(text), 0};
  RDFA_ASSIGN_OR_RETURN(Term term, ParseTerm(&c, 1));
  c.SkipSpace();
  if (!c.AtEnd()) {
    return Status::ParseError("trailing input after term: '" +
                              std::string(text) + "'");
  }
  return term;
}

std::string WriteNTriples(const Graph& graph) {
  std::string out;
  const TermTable& terms = graph.terms();
  for (const TripleId& t : graph.triples()) {
    out += terms.Get(t.s).ToNTriples();
    out += ' ';
    out += terms.Get(t.p).ToNTriples();
    out += ' ';
    out += terms.Get(t.o).ToNTriples();
    out += " .\n";
  }
  return out;
}

}  // namespace rdfa::rdf
