#ifndef RDFA_RDF_MVCC_H_
#define RDFA_RDF_MVCC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/wal.h"

namespace rdfa {
class Tracer;
}

namespace rdfa::rdf {

/// Epoch-based MVCC coordinator over immutable Graph versions.
///
/// Readers call Snapshot() and get a cheap shared_ptr pin of the current
/// version — no graph lock is held across a query, and a version a reader
/// is pinned to is never mutated again (its term table still accepts
/// interning of computed literals, which is internally synchronized and
/// invisible to the triple set). Writers buffer mutations into a pending
/// delta; Commit() merges the delta at an epoch boundary: it appends the
/// ops to the WAL and fsyncs (durable before visible), clones the current
/// version, applies the delta to the clone, freezes its indexes, and
/// publishes it as the next epoch. Readers racing a commit simply keep
/// their pin; later queries see the new version.
///
/// With `Options::wal_path` set, every committed delta is durable: Open()
/// replays the log (tolerating a torn tail from a crash mid-append) and
/// reconstructs the pre-crash graph without reparsing any source data.
class MvccGraph {
 public:
  /// Applies a buffered SPARQL update to a graph — injected by the layer
  /// that owns a SPARQL engine, since rdf/ sits below sparql/. Commit and
  /// replay both use it, so recovery re-runs updates identically.
  using UpdateFn = std::function<Status(Graph*, const std::string&)>;

  struct Options {
    std::string wal_path;      ///< empty = no durability
    size_t wal_sync_every = 1; ///< fsync batching for intra-commit appends
    UpdateFn update_fn;        ///< required to buffer/replay SPARQL updates
    /// Optional tracer: Open() records a "wal-replay" span, Commit() a
    /// "mvcc-commit" span with "wal-append" / "commit-apply" /
    /// "commit-publish" children. Null disables (zero overhead).
    std::shared_ptr<Tracer> tracer;
  };

  /// A pinned snapshot: the immutable graph version plus the epoch it
  /// belongs to. Holding the shared_ptr keeps the version alive even after
  /// later commits supersede it.
  struct Pin {
    std::shared_ptr<Graph> graph;
    uint64_t epoch = 0;
    /// Pin-tracking token: its destructor decrements this epoch's pin count
    /// in the coordinator's pin table (which feeds the
    /// rdfa_mvcc_snapshot_pins / min_pinned_epoch / epoch_lag gauges). The
    /// table is shared, so a pin outliving the MvccGraph stays safe.
    std::shared_ptr<void> token;
  };

  struct OpenInfo {
    uint64_t replayed_records = 0;
    uint64_t truncated_bytes = 0;
  };

  /// An MvccGraph without durability, seeded with `base` (or empty).
  explicit MvccGraph(std::unique_ptr<Graph> base = nullptr);
  MvccGraph(std::unique_ptr<Graph> base, Options opts);

  /// Opens with `opts` (typically with a WAL path): replays the log into
  /// `base`, truncates any torn tail, and positions the WAL for append.
  static Result<std::unique_ptr<MvccGraph>> Open(
      Options opts, std::unique_ptr<Graph> base = nullptr);

  /// Pins the current version. Cheap (one mutex-guarded shared_ptr copy);
  /// never blocks behind a commit's clone/apply work.
  Pin Snapshot() const;

  uint64_t Epoch() const;
  OpenInfo open_info() const { return open_info_; }
  bool durable() const { return wal_ != nullptr; }

  // ---- writer API (thread-safe; writers serialize on an internal mutex,
  // readers are never blocked) --------------------------------------------

  void Insert(const Term& s, const Term& p, const Term& o);
  /// Buffers a pattern removal; absent optionals are wildcards.
  void Remove(const Term* s, const Term* p, const Term* o);
  /// Buffers a SPARQL update (requires Options::update_fn).
  Status BufferUpdate(std::string sparql_update);
  size_t pending_ops() const;

  /// Merges the pending delta into the next version and returns the new
  /// epoch. WAL append + fsync happens before the version is published. A
  /// record whose application fails (e.g. a malformed buffered update) is
  /// skipped — deliberately the same policy replay uses, so recovery and
  /// the original commit converge on the same graph.
  Result<uint64_t> Commit();

 private:
  struct PinTable;

  Status ApplyRecord(Graph* g, const WalRecord& rec) const;

  Options opts_;
  std::shared_ptr<PinTable> pin_table_;
  OpenInfo open_info_;
  std::unique_ptr<WriteAheadLog> wal_;

  mutable std::mutex snap_mu_;  ///< guards current_ + epoch_ publication
  std::shared_ptr<Graph> current_;
  uint64_t epoch_ = 0;

  mutable std::mutex writer_mu_;  ///< serializes writers and commits
  std::vector<WalRecord> pending_;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_MVCC_H_
