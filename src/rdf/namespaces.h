#ifndef RDFA_RDF_NAMESPACES_H_
#define RDFA_RDF_NAMESPACES_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace rdfa::rdf {

/// Well-known vocabulary IRIs. Kept as plain char arrays so they can be
/// concatenated cheaply and used in constant expressions.
namespace rdfns {
inline constexpr char kType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kProperty[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
inline constexpr char kPrefix[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
}  // namespace rdfns

namespace rdfsns {
inline constexpr char kClass[] = "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr char kSubClassOf[] = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kSubPropertyOf[] = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr char kDomain[] = "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr char kRange[] = "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr char kLabel[] = "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr char kResource[] = "http://www.w3.org/2000/01/rdf-schema#Resource";
inline constexpr char kLiteralClass[] = "http://www.w3.org/2000/01/rdf-schema#Literal";
inline constexpr char kPrefix[] = "http://www.w3.org/2000/01/rdf-schema#";
}  // namespace rdfsns

namespace xsd {
inline constexpr char kString[] = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr char kInteger[] = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kInt[] = "http://www.w3.org/2001/XMLSchema#int";
inline constexpr char kLong[] = "http://www.w3.org/2001/XMLSchema#long";
inline constexpr char kDecimal[] = "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr char kDouble[] = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr char kFloat[] = "http://www.w3.org/2001/XMLSchema#float";
inline constexpr char kBoolean[] = "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr char kDate[] = "http://www.w3.org/2001/XMLSchema#date";
inline constexpr char kDateTime[] = "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr char kPrefix[] = "http://www.w3.org/2001/XMLSchema#";
}  // namespace xsd

/// Bidirectional prefix <-> namespace mapping, used by the Turtle parser,
/// serializers and pretty-printers. Comes pre-loaded with rdf/rdfs/xsd.
class PrefixMap {
 public:
  PrefixMap();

  /// Registers (or overwrites) `prefix` -> `iri_base`. `prefix` excludes the
  /// trailing colon ("ex", not "ex:").
  void Register(std::string prefix, std::string iri_base);

  /// Expands "ex:Laptop" to the full IRI; returns nullopt for unknown
  /// prefixes or inputs without a colon.
  std::optional<std::string> Expand(std::string_view qname) const;

  /// Shrinks a full IRI to "prefix:local" if a registered namespace is a
  /// prefix of it; otherwise returns the IRI unchanged wrapped in <>.
  std::string ShrinkOrWrap(std::string_view iri) const;

  const std::map<std::string, std::string>& prefixes() const {
    return prefixes_;
  }

 private:
  std::map<std::string, std::string> prefixes_;  // prefix -> base IRI
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_NAMESPACES_H_
