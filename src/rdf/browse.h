#ifndef RDFA_RDF_BROWSE_H_
#define RDFA_RDF_BROWSE_H_

#include <string>
#include <vector>

#include "rdf/graph.h"

namespace rdfa::rdf {

/// One property group of a resource card: a predicate with the values it
/// links the resource to (outgoing) or the subjects linking in (incoming).
struct PropertyGroup {
  TermId property = kNoTermId;
  std::vector<TermId> values;
};

/// The browsing view of one resource — what the paper calls *plain graph
/// browsing* (§1.2 "start from a resource, inspect its values and move to a
/// connected resource"): its types, outgoing property/value groups, and
/// incoming links.
struct ResourceCard {
  TermId subject = kNoTermId;
  std::vector<TermId> types;
  std::vector<PropertyGroup> outgoing;  ///< excludes rdf:type
  std::vector<PropertyGroup> incoming;  ///< p such that (x, p, subject)
};

/// Builds the card for `resource`. Values within a group are in term-id
/// order (deterministic).
ResourceCard DescribeResource(const Graph& graph, TermId resource);

/// The Concise Bounded Description of `resource` (the DESCRIBE query form):
/// every triple with the resource as subject, plus, recursively, the full
/// description of any blank node value. Triples are added to `*out`;
/// returns how many.
size_t ConciseBoundedDescription(const Graph& graph, TermId resource,
                                 Graph* out);

/// Renders a card as text (local names, literals verbatim).
std::string RenderResourceCard(const Graph& graph, const ResourceCard& card,
                               size_t max_values_per_property = 8);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_BROWSE_H_
