#ifndef RDFA_RDF_TERM_H_
#define RDFA_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rdfa::rdf {

/// Identifier of an interned term inside a TermTable. Ids are dense and
/// start at 0; kNoTermId never names a term and doubles as the wildcard in
/// pattern matching.
using TermId = uint32_t;
inline constexpr TermId kNoTermId = UINT32_MAX;

/// The three RDF term kinds. Blank nodes are kept distinct from IRIs so
/// generated datasets (e.g. a reloaded answer frame) can mint fresh nodes.
enum class TermKind : uint8_t {
  kIri = 0,
  kBlankNode = 1,
  kLiteral = 2,
};

/// One RDF term: an IRI, a blank node label, or a literal with optional
/// datatype IRI and language tag. Plain value type; compare with ==.
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  /// Factory functions — the only way terms should be built.
  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  /// A plain literal (xsd:string by convention, datatype left empty).
  static Term Literal(std::string lexical);
  static Term TypedLiteral(std::string lexical, std::string datatype_iri);
  static Term LangLiteral(std::string lexical, std::string lang);
  /// Convenience typed-literal builders for the XSD types the engine uses.
  static Term Integer(int64_t value);
  static Term Double(double value);
  static Term Boolean(bool value);
  /// xsd:dateTime literal from its lexical form (no validation).
  static Term DateTime(std::string lexical);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_blank() const { return kind_ == TermKind::kBlankNode; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }

  /// The IRI string, blank label, or literal lexical form.
  const std::string& lexical() const { return lexical_; }
  /// Datatype IRI; empty for plain literals and non-literals.
  const std::string& datatype() const { return datatype_; }
  /// BCP47 language tag; empty unless a language-tagged literal.
  const std::string& lang() const { return lang_; }

  /// True if the literal's datatype is one of the XSD numeric types (or it
  /// is a plain literal that lexically parses as a number).
  bool IsNumericLiteral() const;

  /// N-Triples-style rendering: <iri>, _:label, "lex"^^<dt>, "lex"@lang.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.lang_ == b.lang_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Hash combining all fields; used by TermTable.
  size_t Hash() const;

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;
  std::string lang_;
};

/// A triple of interned term ids. The subject/predicate/object are ids into
/// the owning graph's TermTable.
struct TripleId {
  TermId s = kNoTermId;
  TermId p = kNoTermId;
  TermId o = kNoTermId;

  friend bool operator==(const TripleId& a, const TripleId& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_TERM_H_
