#include "rdf/binary_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

namespace rdfa::rdf {

namespace {

// v1 payload: terms + triples. v2 appends the GraphStats block so loading a
// snapshot restores statistics instead of silently recomputing them. Both
// magics load; saves always write the current version.
constexpr char kMagicV1[] = "RDFA1\n";
constexpr char kMagicV2[] = "RDFA2\n";
constexpr size_t kMagicLen = 6;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU8(uint8_t* v) {
    if (pos_ >= data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SaveBinary(const Graph& graph) {
  std::string out(kMagicV2, kMagicLen);
  const TermTable& terms = graph.terms();
  PutU64(&out, terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    const Term& t = terms.Get(static_cast<TermId>(i));
    out.push_back(static_cast<char>(t.kind()));
    PutString(&out, t.lexical());
    PutString(&out, t.datatype());
    PutString(&out, t.lang());
  }
  PutU64(&out, graph.triples().size());
  for (const TripleId& t : graph.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
  }
  // v2 stats block: global distincts, then one record per predicate. The
  // predicate entries are written in ascending id order so snapshots of the
  // same graph are byte-identical.
  const GraphStats& stats = graph.Stats();
  PutU64(&out, stats.triples);
  PutU64(&out, stats.distinct_subjects);
  PutU64(&out, stats.distinct_predicates);
  PutU64(&out, stats.distinct_objects);
  std::vector<TermId> preds;
  preds.reserve(stats.by_predicate.size());
  for (const auto& [p, unused] : stats.by_predicate) preds.push_back(p);
  std::sort(preds.begin(), preds.end());
  PutU64(&out, preds.size());
  for (TermId p : preds) {
    const PredicateStats& ps = stats.by_predicate.at(p);
    PutU32(&out, p);
    PutU64(&out, ps.triples);
    PutU64(&out, ps.distinct_subjects);
    PutU64(&out, ps.distinct_objects);
  }
  return out;
}

Status LoadBinary(std::string_view data, Graph* graph) {
  if (graph->size() != 0 || graph->terms().size() != 0) {
    return Status::InvalidArgument("LoadBinary requires an empty graph");
  }
  int version = 0;
  if (data.size() >= kMagicLen) {
    if (std::memcmp(data.data(), kMagicV1, kMagicLen) == 0) version = 1;
    if (std::memcmp(data.data(), kMagicV2, kMagicLen) == 0) version = 2;
  }
  if (version == 0) {
    return Status::ParseError("bad magic: not an rdfa binary snapshot");
  }
  Reader r(data.substr(kMagicLen));
  uint64_t n_terms = 0;
  if (!r.ReadU64(&n_terms)) return Status::ParseError("truncated term count");
  for (uint64_t i = 0; i < n_terms; ++i) {
    uint8_t kind = 0;
    std::string lexical, datatype, lang;
    if (!r.ReadU8(&kind) || !r.ReadString(&lexical) ||
        !r.ReadString(&datatype) || !r.ReadString(&lang)) {
      return Status::ParseError("truncated term " + std::to_string(i));
    }
    Term term;
    switch (static_cast<TermKind>(kind)) {
      case TermKind::kIri:
        term = Term::Iri(std::move(lexical));
        break;
      case TermKind::kBlankNode:
        term = Term::Blank(std::move(lexical));
        break;
      case TermKind::kLiteral:
        if (!lang.empty()) {
          term = Term::LangLiteral(std::move(lexical), std::move(lang));
        } else if (!datatype.empty()) {
          term = Term::TypedLiteral(std::move(lexical), std::move(datatype));
        } else {
          term = Term::Literal(std::move(lexical));
        }
        break;
      default:
        return Status::ParseError("bad term kind");
    }
    TermId id = graph->terms().Intern(term);
    if (id != i) {
      return Status::ParseError("duplicate term in snapshot (id drift)");
    }
  }
  uint64_t n_triples = 0;
  if (!r.ReadU64(&n_triples)) {
    return Status::ParseError("truncated triple count");
  }
  for (uint64_t i = 0; i < n_triples; ++i) {
    TripleId t;
    if (!r.ReadU32(&t.s) || !r.ReadU32(&t.p) || !r.ReadU32(&t.o)) {
      return Status::ParseError("truncated triple " + std::to_string(i));
    }
    if (t.s >= n_terms || t.p >= n_terms || t.o >= n_terms) {
      return Status::ParseError("triple references unknown term");
    }
    graph->AddIds(t);
  }
  // v1 snapshots carry no stats: the first EnsureIndexes recomputes them.
  if (version < 2) return Status::OK();
  GraphStats stats;
  uint64_t n_preds = 0;
  if (!r.ReadU64(&stats.triples) || !r.ReadU64(&stats.distinct_subjects) ||
      !r.ReadU64(&stats.distinct_predicates) ||
      !r.ReadU64(&stats.distinct_objects) || !r.ReadU64(&n_preds)) {
    return Status::ParseError("truncated stats block");
  }
  for (uint64_t i = 0; i < n_preds; ++i) {
    uint32_t pred = 0;
    PredicateStats ps;
    if (!r.ReadU32(&pred) || !r.ReadU64(&ps.triples) ||
        !r.ReadU64(&ps.distinct_subjects) || !r.ReadU64(&ps.distinct_objects)) {
      return Status::ParseError("truncated predicate stats " +
                                std::to_string(i));
    }
    if (pred >= n_terms) {
      return Status::ParseError("predicate stats reference unknown term");
    }
    stats.by_predicate[pred] = ps;
  }
  graph->RestoreStats(std::move(stats));
  return Status::OK();
}

Status SaveBinaryFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data = SaveBinary(graph);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Status LoadBinaryFile(const std::string& path, Graph* graph) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return LoadBinary(data, graph);
}

}  // namespace rdfa::rdf
