#include "rdf/binary_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "common/vbyte.h"
#include "rdf/mapped_graph.h"

namespace rdfa::rdf {

namespace {

// v1 payload: terms + triples. v2 appends the GraphStats block so loading a
// snapshot restores statistics instead of silently recomputing them. v3 is
// the compressed section-table layout documented in binary_io.h. All three
// magics load; saves write v3 unless asked otherwise.
constexpr char kMagicV1[] = "RDFA1\n";
constexpr char kMagicV2[] = "RDFA2\n";
constexpr char kMagicV3[] = "RDFA3\n";
constexpr size_t kMagicLen = 6;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU8(uint8_t* v) {
    if (pos_ >= data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Stats block shared verbatim by v2 (trailing) and v3 (STATS section).
// Predicate entries are written in ascending id order so snapshots of the
// same graph are byte-identical.
void AppendStatsBlock(std::string* out, const GraphStats& stats) {
  PutU64(out, stats.triples);
  PutU64(out, stats.distinct_subjects);
  PutU64(out, stats.distinct_predicates);
  PutU64(out, stats.distinct_objects);
  std::vector<TermId> preds;
  preds.reserve(stats.by_predicate.size());
  for (const auto& [p, unused] : stats.by_predicate) preds.push_back(p);
  std::sort(preds.begin(), preds.end());
  PutU64(out, preds.size());
  for (TermId p : preds) {
    const PredicateStats& ps = stats.by_predicate.at(p);
    PutU32(out, p);
    PutU64(out, ps.triples);
    PutU64(out, ps.distinct_subjects);
    PutU64(out, ps.distinct_objects);
  }
}

std::string SaveBinaryV2(const Graph& graph) {
  std::string out(kMagicV2, kMagicLen);
  const TermTable& terms = graph.terms();
  PutU64(&out, terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    const Term& t = terms.Get(static_cast<TermId>(i));
    out.push_back(static_cast<char>(t.kind()));
    PutString(&out, t.lexical());
    PutString(&out, t.datatype());
    PutString(&out, t.lang());
  }
  PutU64(&out, graph.triples().size());
  for (const TripleId& t : graph.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
  }
  AppendStatsBlock(&out, graph.Stats());
  return out;
}

// RDFA3 TERMS section: front-coded lexicals (restart every kTermBlock),
// datatype/language strings interned into per-file dictionaries.
std::string BuildTermsSection(const TermTable& terms) {
  constexpr size_t kBlock = MappedGraphView::kTermBlock;
  const size_t n = terms.size();
  std::vector<std::string> datatypes, langs;
  std::unordered_map<std::string, uint64_t> dt_idx, lang_idx;
  const auto dict_index = [](const std::string& s,
                             std::vector<std::string>* dict,
                             std::unordered_map<std::string, uint64_t>* idx) {
    if (s.empty()) return uint64_t{0};
    auto [it, inserted] = idx->emplace(s, dict->size() + 1);
    if (inserted) dict->push_back(s);
    return it->second;
  };
  std::string blob;
  std::vector<uint64_t> offsets;
  offsets.reserve((n + kBlock - 1) / kBlock);
  std::string prev;
  for (size_t i = 0; i < n; ++i) {
    const Term& t = terms.Get(static_cast<TermId>(i));
    if (i % kBlock == 0) {
      offsets.push_back(blob.size());
      prev.clear();
    }
    blob.push_back(static_cast<char>(t.kind()));
    const std::string& lex = t.lexical();
    size_t shared = 0;
    const size_t max_shared = std::min(prev.size(), lex.size());
    while (shared < max_shared && prev[shared] == lex[shared]) ++shared;
    AppendVbyte(&blob, shared);
    AppendVbyte(&blob, lex.size() - shared);
    blob.append(lex, shared, std::string::npos);
    AppendVbyte(&blob, dict_index(t.datatype(), &datatypes, &dt_idx));
    AppendVbyte(&blob, dict_index(t.lang(), &langs, &lang_idx));
    prev = lex;
  }
  std::string out;
  PutU64(&out, n);
  PutU32(&out, static_cast<uint32_t>(kBlock));
  PutU64(&out, datatypes.size());
  for (const std::string& s : datatypes) {
    AppendVbyte(&out, s.size());
    out.append(s);
  }
  PutU64(&out, langs.size());
  for (const std::string& s : langs) {
    AppendVbyte(&out, s.size());
    out.append(s);
  }
  PutU64(&out, offsets.size());
  for (uint64_t off : offsets) PutU64(&out, off);
  out.append(blob);
  return out;
}

// RDFA3 permutation section: per-block first keys in a binary-searchable
// index, remaining keys difference-coded (see binary_io.h for the scheme).
std::string BuildPermSection(const Graph& graph, Graph::Perm perm) {
  constexpr size_t kBlock = MappedGraphView::kPermBlock;
  std::string index, blob;
  uint64_t count = 0;
  uint32_t pa = 0, pb = 0, pc = 0;
  graph.ForEachInPerm(
      perm, kNoTermId, kNoTermId, kNoTermId, [&](const TripleId& t) {
        uint32_t a, b, c;
        switch (perm) {
          case Graph::kPermPOS: a = t.p, b = t.o, c = t.s; break;
          case Graph::kPermOSP: a = t.o, b = t.s, c = t.p; break;
          default: a = t.s, b = t.p, c = t.o; break;
        }
        if (count % kBlock == 0) {
          PutU32(&index, a);
          PutU32(&index, b);
          PutU32(&index, c);
          PutU64(&index, blob.size());
        } else {
          const uint32_t da = a - pa;
          AppendVbyte(&blob, da);
          if (da != 0) {
            AppendVbyte(&blob, b);
            AppendVbyte(&blob, c);
          } else {
            const uint32_t db = b - pb;
            AppendVbyte(&blob, db);
            if (db != 0) {
              AppendVbyte(&blob, c);
            } else {
              AppendVbyte(&blob, c - pc);
            }
          }
        }
        pa = a, pb = b, pc = c;
        ++count;
      });
  std::string out;
  PutU64(&out, count);
  PutU32(&out, static_cast<uint32_t>(kBlock));
  PutU64(&out, (count + kBlock - 1) / kBlock);
  out.append(index);
  out.append(blob);
  return out;
}

std::string BuildGenerationsSection(const Graph& graph) {
  std::string out;
  PutU64(&out, graph.Generation());
  auto gens = graph.PredicateGenerations();
  std::sort(gens.begin(), gens.end());
  PutU64(&out, gens.size());
  for (const auto& [pred, gen] : gens) {
    PutU32(&out, pred);
    PutU64(&out, gen);
  }
  return out;
}

std::string SaveBinaryV3(const Graph& graph) {
  graph.Freeze();
  std::string sections[6];
  sections[0] = BuildTermsSection(graph.terms());
  sections[1] = BuildPermSection(graph, Graph::kPermSPO);
  sections[2] = BuildPermSection(graph, Graph::kPermPOS);
  sections[3] = BuildPermSection(graph, Graph::kPermOSP);
  AppendStatsBlock(&sections[4], graph.Stats());
  sections[5] = BuildGenerationsSection(graph);
  std::string out(kMagicV3, kMagicLen);
  PutU32(&out, 6);
  uint64_t offset = kMagicLen + 4 + 6 * 20;  // past the section table
  for (uint32_t i = 0; i < 6; ++i) {
    PutU32(&out, i + 1);  // section kinds are 1-based, in layout order
    PutU64(&out, offset);
    PutU64(&out, sections[i].size());
    offset += sections[i].size();
  }
  for (const std::string& sec : sections) out.append(sec);
  return out;
}

// Fully decodes an RDFA3 snapshot onto the heap through a transient
// (non-owning) view. Triples insert in SPO order — the canonical v3
// enumeration order — so a heap-loaded and a mapped graph agree
// byte-for-byte on every scan.
Status LoadV3Heap(std::string_view data, Graph* graph) {
  RDFA_ASSIGN_OR_RETURN(auto view, MappedGraphView::Parse(data, nullptr));
  const size_t n_terms = view->term_count();
  Term buf[MappedGraphView::kTermBlock];
  for (size_t base = 0; base < n_terms;
       base += MappedGraphView::kTermBlock) {
    const size_t end =
        std::min(base + MappedGraphView::kTermBlock, n_terms);
    view->DecodeRange(static_cast<TermId>(base), static_cast<TermId>(end),
                      buf);
    for (size_t i = base; i < end; ++i) {
      TermId id = graph->terms().Intern(buf[i - base]);
      if (id != i) {
        return Status::ParseError("duplicate term in snapshot (id drift)");
      }
    }
  }
  Status st = Status::OK();
  view->ForEachInPerm(Graph::kPermSPO, kNoTermId, kNoTermId, kNoTermId,
                      [&](const TripleId& t) {
                        if (!st.ok()) return;
                        if (t.s >= n_terms || t.p >= n_terms ||
                            t.o >= n_terms) {
                          st = Status::ParseError(
                              "triple references unknown term");
                          return;
                        }
                        graph->AddIds(t);
                      });
  RDFA_RETURN_NOT_OK(st);
  if (graph->size() != view->triple_count()) {
    return Status::ParseError("duplicate triple in snapshot");
  }
  graph->RestoreStats(view->stats());
  graph->RestoreGenerations(view->generation(),
                            view->predicate_generations());
  return Status::OK();
}

}  // namespace

std::string SaveBinary(const Graph& graph, int version) {
  return version <= kSnapshotVersionV2 ? SaveBinaryV2(graph)
                                       : SaveBinaryV3(graph);
}

Status LoadBinary(std::string_view data, Graph* graph) {
  if (graph->size() != 0 || graph->terms().size() != 0) {
    return Status::InvalidArgument("LoadBinary requires an empty graph");
  }
  int version = 0;
  if (data.size() >= kMagicLen) {
    if (std::memcmp(data.data(), kMagicV1, kMagicLen) == 0) version = 1;
    if (std::memcmp(data.data(), kMagicV2, kMagicLen) == 0) version = 2;
    if (std::memcmp(data.data(), kMagicV3, kMagicLen) == 0) version = 3;
  }
  if (version == 0) {
    return Status::ParseError("bad magic: not an rdfa binary snapshot");
  }
  if (version == 3) return LoadV3Heap(data, graph);
  Reader r(data.substr(kMagicLen));
  uint64_t n_terms = 0;
  if (!r.ReadU64(&n_terms)) return Status::ParseError("truncated term count");
  for (uint64_t i = 0; i < n_terms; ++i) {
    uint8_t kind = 0;
    std::string lexical, datatype, lang;
    if (!r.ReadU8(&kind) || !r.ReadString(&lexical) ||
        !r.ReadString(&datatype) || !r.ReadString(&lang)) {
      return Status::ParseError("truncated term " + std::to_string(i));
    }
    Term term;
    switch (static_cast<TermKind>(kind)) {
      case TermKind::kIri:
        term = Term::Iri(std::move(lexical));
        break;
      case TermKind::kBlankNode:
        term = Term::Blank(std::move(lexical));
        break;
      case TermKind::kLiteral:
        if (!lang.empty()) {
          term = Term::LangLiteral(std::move(lexical), std::move(lang));
        } else if (!datatype.empty()) {
          term = Term::TypedLiteral(std::move(lexical), std::move(datatype));
        } else {
          term = Term::Literal(std::move(lexical));
        }
        break;
      default:
        return Status::ParseError("bad term kind");
    }
    TermId id = graph->terms().Intern(term);
    if (id != i) {
      return Status::ParseError("duplicate term in snapshot (id drift)");
    }
  }
  uint64_t n_triples = 0;
  if (!r.ReadU64(&n_triples)) {
    return Status::ParseError("truncated triple count");
  }
  for (uint64_t i = 0; i < n_triples; ++i) {
    TripleId t;
    if (!r.ReadU32(&t.s) || !r.ReadU32(&t.p) || !r.ReadU32(&t.o)) {
      return Status::ParseError("truncated triple " + std::to_string(i));
    }
    if (t.s >= n_terms || t.p >= n_terms || t.o >= n_terms) {
      return Status::ParseError("triple references unknown term");
    }
    graph->AddIds(t);
  }
  // v1 snapshots carry no stats: the first EnsureIndexes recomputes them.
  if (version < 2) return Status::OK();
  GraphStats stats;
  uint64_t n_preds = 0;
  if (!r.ReadU64(&stats.triples) || !r.ReadU64(&stats.distinct_subjects) ||
      !r.ReadU64(&stats.distinct_predicates) ||
      !r.ReadU64(&stats.distinct_objects) || !r.ReadU64(&n_preds)) {
    return Status::ParseError("truncated stats block");
  }
  for (uint64_t i = 0; i < n_preds; ++i) {
    uint32_t pred = 0;
    PredicateStats ps;
    if (!r.ReadU32(&pred) || !r.ReadU64(&ps.triples) ||
        !r.ReadU64(&ps.distinct_subjects) || !r.ReadU64(&ps.distinct_objects)) {
      return Status::ParseError("truncated predicate stats " +
                                std::to_string(i));
    }
    if (pred >= n_terms) {
      return Status::ParseError("predicate stats reference unknown term");
    }
    stats.by_predicate[pred] = ps;
  }
  graph->RestoreStats(std::move(stats));
  return Status::OK();
}

Status SaveBinaryFile(const Graph& graph, const std::string& path,
                      int version) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data = SaveBinary(graph, version);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Status LoadBinaryFile(const std::string& path, Graph* graph) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return LoadBinary(data, graph);
}

Result<std::unique_ptr<Graph>> OpenMappedSnapshot(const std::string& path) {
  RDFA_ASSIGN_OR_RETURN(auto view, MappedGraphView::Open(path));
  auto graph = std::make_unique<Graph>();
  graph->AttachMapped(std::move(view));
  return graph;
}

}  // namespace rdfa::rdf
