#include "rdf/binary_io.h"

#include <cstring>
#include <fstream>

namespace rdfa::rdf {

namespace {

constexpr char kMagic[] = "RDFA1\n";
constexpr size_t kMagicLen = 6;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU8(uint8_t* v) {
    if (pos_ >= data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SaveBinary(const Graph& graph) {
  std::string out(kMagic, kMagicLen);
  const TermTable& terms = graph.terms();
  PutU64(&out, terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    const Term& t = terms.Get(static_cast<TermId>(i));
    out.push_back(static_cast<char>(t.kind()));
    PutString(&out, t.lexical());
    PutString(&out, t.datatype());
    PutString(&out, t.lang());
  }
  PutU64(&out, graph.triples().size());
  for (const TripleId& t : graph.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
  }
  return out;
}

Status LoadBinary(std::string_view data, Graph* graph) {
  if (graph->size() != 0 || graph->terms().size() != 0) {
    return Status::InvalidArgument("LoadBinary requires an empty graph");
  }
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return Status::ParseError("bad magic: not an rdfa binary snapshot");
  }
  Reader r(data.substr(kMagicLen));
  uint64_t n_terms = 0;
  if (!r.ReadU64(&n_terms)) return Status::ParseError("truncated term count");
  for (uint64_t i = 0; i < n_terms; ++i) {
    uint8_t kind = 0;
    std::string lexical, datatype, lang;
    if (!r.ReadU8(&kind) || !r.ReadString(&lexical) ||
        !r.ReadString(&datatype) || !r.ReadString(&lang)) {
      return Status::ParseError("truncated term " + std::to_string(i));
    }
    Term term;
    switch (static_cast<TermKind>(kind)) {
      case TermKind::kIri:
        term = Term::Iri(std::move(lexical));
        break;
      case TermKind::kBlankNode:
        term = Term::Blank(std::move(lexical));
        break;
      case TermKind::kLiteral:
        if (!lang.empty()) {
          term = Term::LangLiteral(std::move(lexical), std::move(lang));
        } else if (!datatype.empty()) {
          term = Term::TypedLiteral(std::move(lexical), std::move(datatype));
        } else {
          term = Term::Literal(std::move(lexical));
        }
        break;
      default:
        return Status::ParseError("bad term kind");
    }
    TermId id = graph->terms().Intern(term);
    if (id != i) {
      return Status::ParseError("duplicate term in snapshot (id drift)");
    }
  }
  uint64_t n_triples = 0;
  if (!r.ReadU64(&n_triples)) {
    return Status::ParseError("truncated triple count");
  }
  for (uint64_t i = 0; i < n_triples; ++i) {
    TripleId t;
    if (!r.ReadU32(&t.s) || !r.ReadU32(&t.p) || !r.ReadU32(&t.o)) {
      return Status::ParseError("truncated triple " + std::to_string(i));
    }
    if (t.s >= n_terms || t.p >= n_terms || t.o >= n_terms) {
      return Status::ParseError("triple references unknown term");
    }
    graph->AddIds(t);
  }
  return Status::OK();
}

Status SaveBinaryFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data = SaveBinary(graph);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Status LoadBinaryFile(const std::string& path, Graph* graph) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::InvalidArgument("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return LoadBinary(data, graph);
}

}  // namespace rdfa::rdf
