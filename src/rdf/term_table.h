#ifndef RDFA_RDF_TERM_TABLE_H_
#define RDFA_RDF_TERM_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"

namespace rdfa::rdf {

/// A read-only source of already-interned terms that a TermTable can sit on
/// top of without eagerly decoding them — the RDFA3 mapped snapshot's term
/// dictionary implements this. Ids are dense [0, term_count()); DecodeTerm
/// must be thread-safe and deterministic (same id, same term).
class TermDictSource {
 public:
  virtual ~TermDictSource() = default;
  virtual size_t term_count() const = 0;
  virtual Term DecodeTerm(TermId id) const = 0;
  /// Bulk decode of [begin, end) into `out`; sources with block-structured
  /// storage override this to avoid per-id redundant work.
  virtual void DecodeRange(TermId begin, TermId end, Term* out) const {
    for (TermId id = begin; id < end; ++id) out[id - begin] = DecodeTerm(id);
  }
};

/// Interns terms to dense 32-bit ids. All engine data structures (graph
/// indexes, bindings, extensions) operate on TermIds; the table is the only
/// place term strings live.
///
/// Thread-safety: fully concurrent. `Get` is lock-free — terms live in
/// pointer-stable chunks of geometrically growing size whose slots are
/// written before the id is published, so any id legitimately held by a
/// reader is always dereferenceable without taking a lock. `Find` takes a
/// shared lock on the intern index; `Intern`/`MintBlank` take it exclusively
/// only when actually inserting. This matters because queries intern
/// *computed* literals (aggregates, BIND results) while other readers run,
/// and because MVCC snapshot cloning copies the table of a version readers
/// are still pinning.
class TermTable {
 public:
  TermTable() = default;
  TermTable(const TermTable&) = delete;
  TermTable& operator=(const TermTable&) = delete;
  // Moving requires exclusive access to both tables, like any mutation of
  // the owning Graph.
  TermTable(TermTable&& other) noexcept { *this = std::move(other); }
  TermTable& operator=(TermTable&& other) noexcept;
  ~TermTable();

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Looks up an already-interned term; kNoTermId if absent.
  TermId Find(const Term& term) const;

  /// The term for `id`. Precondition: id < size(). Lock-free once the
  /// containing chunk exists; with an attached dictionary, the first touch
  /// of a chunk decodes just that chunk (not the whole dictionary).
  const Term& Get(TermId id) const {
    const size_t c = ChunkOf(id);
    const Term* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) chunk = MaterializeChunk(c);
    return chunk[id - ChunkBase(c)];
  }

  /// Backs this (empty) table with a lazily-decoded dictionary: size()
  /// immediately reports the dictionary's term count and Get() decodes
  /// chunks on first touch, but nothing is decoded up front. The intern
  /// index (Find/Intern/MintBlank) hydrates in full on its first use —
  /// interning fundamentally needs every term hashed. New terms interned
  /// past the dictionary append as usual.
  void AttachDict(std::shared_ptr<const TermDictSource> dict);

  /// Convenience: intern an IRI / plain literal directly.
  TermId InternIri(std::string_view iri);
  TermId FindIri(std::string_view iri) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Mints a blank node with a fresh label ("_:b<N>") guaranteed unique
  /// within this table.
  TermId MintBlank();

  /// Replaces this table's contents with a deep copy of `other`, preserving
  /// ids. Requires exclusive access to *this*; `other` may be serving
  /// concurrent Find/Get/Intern calls (snapshot cloning copies the table of
  /// a live version).
  void CopyFrom(const TermTable& other);

 private:
  // Chunk c holds 64 << c terms; chunk bases are 64 * (2^c - 1). 28 chunks
  // cover the whole 32-bit id space. Slots are default-constructed Terms
  // assigned under the intern lock before the id is published.
  static constexpr size_t kFirstChunkBits = 6;
  static constexpr size_t kNumChunks = 28;

  static size_t ChunkOf(TermId id) {
    const uint64_t z = (static_cast<uint64_t>(id) >> kFirstChunkBits) + 1;
    size_t c = 0;
    while ((z >> (c + 1)) != 0) ++c;  // floor(log2(z))
    return c;
  }
  static size_t ChunkBase(size_t c) {
    return ((size_t{64} << c) - 64);
  }
  static size_t ChunkSize(size_t c) { return size_t{64} << c; }

  // Appends `term` at id size_. Caller holds mu_ exclusively.
  TermId AppendLocked(const Term& term);
  void DestroyChunks();

  // Decodes every term of chunk `c` covered by dict_ into a freshly
  // allocated chunk and publishes it (no-op if already present). Returns
  // the chunk pointer. Takes mu_ exclusively.
  const Term* MaterializeChunk(size_t c) const;
  // Same, for a caller already holding mu_ exclusively.
  Term* MaterializeChunkLocked(size_t c) const;
  // Materializes every dict chunk and builds index_ over the dictionary.
  // Must run before any append so partially-filled chunks never exist.
  void HydrateIndex() const;

  struct TermHash {
    size_t operator()(const Term& t) const { return t.Hash(); }
  };

  mutable std::shared_mutex mu_;  ///< guards index_, blank_counter_, growth
  mutable std::array<std::atomic<Term*>, kNumChunks> chunks_ = {};
  std::atomic<size_t> size_{0};
  // Mutable because lazy hydration off dict_ is logically const: it changes
  // the representation, never the observable contents.
  mutable std::unordered_map<Term, TermId, TermHash> index_;
  uint64_t blank_counter_ = 0;
  std::shared_ptr<const TermDictSource> dict_;
  mutable std::atomic<bool> index_hydrated_{true};  ///< false once AttachDict
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_TERM_TABLE_H_
