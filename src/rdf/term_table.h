#ifndef RDFA_RDF_TERM_TABLE_H_
#define RDFA_RDF_TERM_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"

namespace rdfa::rdf {

/// Interns terms to dense 32-bit ids. All engine data structures (graph
/// indexes, bindings, extensions) operate on TermIds; the table is the only
/// place term strings live.
///
/// Thread-safety: fully concurrent. `Get` is lock-free — terms live in
/// pointer-stable chunks of geometrically growing size whose slots are
/// written before the id is published, so any id legitimately held by a
/// reader is always dereferenceable without taking a lock. `Find` takes a
/// shared lock on the intern index; `Intern`/`MintBlank` take it exclusively
/// only when actually inserting. This matters because queries intern
/// *computed* literals (aggregates, BIND results) while other readers run,
/// and because MVCC snapshot cloning copies the table of a version readers
/// are still pinning.
class TermTable {
 public:
  TermTable() = default;
  TermTable(const TermTable&) = delete;
  TermTable& operator=(const TermTable&) = delete;
  // Moving requires exclusive access to both tables, like any mutation of
  // the owning Graph.
  TermTable(TermTable&& other) noexcept { *this = std::move(other); }
  TermTable& operator=(TermTable&& other) noexcept;
  ~TermTable();

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Looks up an already-interned term; kNoTermId if absent.
  TermId Find(const Term& term) const;

  /// The term for `id`. Precondition: id < size(). Lock-free.
  const Term& Get(TermId id) const {
    const size_t c = ChunkOf(id);
    return chunks_[c].load(std::memory_order_acquire)[id - ChunkBase(c)];
  }

  /// Convenience: intern an IRI / plain literal directly.
  TermId InternIri(std::string_view iri);
  TermId FindIri(std::string_view iri) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Mints a blank node with a fresh label ("_:b<N>") guaranteed unique
  /// within this table.
  TermId MintBlank();

  /// Replaces this table's contents with a deep copy of `other`, preserving
  /// ids. Requires exclusive access to *this*; `other` may be serving
  /// concurrent Find/Get/Intern calls (snapshot cloning copies the table of
  /// a live version).
  void CopyFrom(const TermTable& other);

 private:
  // Chunk c holds 64 << c terms; chunk bases are 64 * (2^c - 1). 28 chunks
  // cover the whole 32-bit id space. Slots are default-constructed Terms
  // assigned under the intern lock before the id is published.
  static constexpr size_t kFirstChunkBits = 6;
  static constexpr size_t kNumChunks = 28;

  static size_t ChunkOf(TermId id) {
    const uint64_t z = (static_cast<uint64_t>(id) >> kFirstChunkBits) + 1;
    size_t c = 0;
    while ((z >> (c + 1)) != 0) ++c;  // floor(log2(z))
    return c;
  }
  static size_t ChunkBase(size_t c) {
    return ((size_t{64} << c) - 64);
  }
  static size_t ChunkSize(size_t c) { return size_t{64} << c; }

  // Appends `term` at id size_. Caller holds mu_ exclusively.
  TermId AppendLocked(const Term& term);
  void DestroyChunks();

  struct TermHash {
    size_t operator()(const Term& t) const { return t.Hash(); }
  };

  mutable std::shared_mutex mu_;  ///< guards index_, blank_counter_, growth
  std::array<std::atomic<Term*>, kNumChunks> chunks_ = {};
  std::atomic<size_t> size_{0};
  std::unordered_map<Term, TermId, TermHash> index_;
  uint64_t blank_counter_ = 0;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_TERM_TABLE_H_
