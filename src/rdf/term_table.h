#ifndef RDFA_RDF_TERM_TABLE_H_
#define RDFA_RDF_TERM_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace rdfa::rdf {

/// Interns terms to dense 32-bit ids. All engine data structures (graph
/// indexes, bindings, extensions) operate on TermIds; the table is the only
/// place term strings live.
class TermTable {
 public:
  TermTable() = default;
  TermTable(const TermTable&) = delete;
  TermTable& operator=(const TermTable&) = delete;
  TermTable(TermTable&&) = default;
  TermTable& operator=(TermTable&&) = default;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Looks up an already-interned term; kNoTermId if absent.
  TermId Find(const Term& term) const;

  /// The term for `id`. Precondition: id < size().
  const Term& Get(TermId id) const { return terms_[id]; }

  /// Convenience: intern an IRI / plain literal directly.
  TermId InternIri(std::string_view iri);
  TermId FindIri(std::string_view iri) const;

  size_t size() const { return terms_.size(); }

  /// Mints a blank node with a fresh label ("_:b<N>") guaranteed unique
  /// within this table.
  TermId MintBlank();

 private:
  struct TermHash {
    size_t operator()(const Term& t) const { return t.Hash(); }
  };
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
  uint64_t blank_counter_ = 0;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_TERM_TABLE_H_
