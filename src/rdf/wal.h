#ifndef RDFA_RDF_WAL_H_
#define RDFA_RDF_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfa::rdf {

/// One logical write-ahead-log record: a single-triple insert, a pattern
/// remove (absent terms are wildcards), or a raw SPARQL update to re-run on
/// replay. Records are what the MVCC writer buffers between epochs and what
/// `Replay` hands back after a restart.
struct WalRecord {
  enum class Op : uint8_t {
    kInsert = 'I',
    kRemove = 'R',
    kUpdate = 'U',
  };
  Op op = Op::kInsert;
  // kInsert / kRemove. For kInsert all three must be present; for kRemove
  // an absent term is a wildcard lane.
  bool has_s = false, has_p = false, has_o = false;
  Term s, p, o;
  // kUpdate: the SPARQL update text, replayed through the engine.
  std::string update;

  static WalRecord Insert(Term s, Term p, Term o);
  static WalRecord Remove(bool has_s, Term s, bool has_p, Term p, bool has_o,
                          Term o);
  static WalRecord Update(std::string sparql);

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.op == b.op && a.has_s == b.has_s && a.has_p == b.has_p &&
           a.has_o == b.has_o && a.s == b.s && a.p == b.p && a.o == b.o &&
           a.update == b.update;
  }
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes. Exposed so
/// tests can forge / corrupt records deliberately.
uint32_t WalCrc32(const void* data, size_t n);

/// Append-only durable log of graph mutations.
///
/// On-disk format: a sequence of `[u32 payload_len][u32 crc32][payload]`
/// frames, all little-endian; the CRC covers the payload only. The payload
/// starts with the op byte followed by length-prefixed term fields (see
/// wal.cc). Appends are buffered and flushed + fsync'ed by Sync(); Append
/// itself syncs every `sync_every` records so a crash loses at most one
/// batch. A torn tail — a frame cut short or failing its CRC, as a crash
/// mid-append leaves behind — is not an error: Replay stops cleanly at the
/// last well-formed frame and Open truncates the garbage so new appends
/// never interleave with it.
class WriteAheadLog {
 public:
  struct ReplayResult {
    std::vector<WalRecord> records;
    uint64_t clean_bytes = 0;      ///< file offset after the last good frame
    uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped by replay
  };

  /// Decodes every well-formed record of `path`. A missing file replays
  /// empty; a torn tail stops the scan without failing (see class comment).
  static Result<ReplayResult> Replay(const std::string& path);

  /// Opens `path` for appending (creating it if absent), truncating any
  /// torn tail first. `sync_every` batches fsyncs: every Nth Append syncs
  /// (1 = sync on every record).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     size_t sync_every = 1);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status Append(const WalRecord& rec);
  /// Flushes buffered frames and fsyncs the file. Durability barrier: an
  /// MVCC commit calls this *before* publishing the new version.
  Status Sync();

  uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, size_t sync_every);

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t sync_every_ = 1;
  size_t since_sync_ = 0;
  uint64_t appended_ = 0;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_WAL_H_
