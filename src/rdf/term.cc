#include "rdf/term.h"

#include <cctype>
#include <cstdio>
#include <functional>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlankNode;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype_iri) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.datatype_ = std::move(datatype_iri);
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.lang_ = std::move(lang);
  return t;
}

Term Term::Integer(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return TypedLiteral(buf, xsd::kInteger);
}

Term Term::Double(double value) {
  // Round-trippable lexical form: %.17g preserves the exact double so
  // aggregate results survive a Term round trip (FormatNumber truncates to
  // display precision).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return TypedLiteral(buf, xsd::kDouble);
}

Term Term::Boolean(bool value) {
  return TypedLiteral(value ? "true" : "false", xsd::kBoolean);
}

Term Term::DateTime(std::string lexical) {
  return TypedLiteral(std::move(lexical), xsd::kDateTime);
}

namespace {
bool LexicalLooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  bool digit = false, dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}
}  // namespace

bool Term::IsNumericLiteral() const {
  if (!is_literal()) return false;
  if (datatype_ == xsd::kInteger || datatype_ == xsd::kDouble ||
      datatype_ == xsd::kDecimal || datatype_ == xsd::kFloat ||
      datatype_ == xsd::kInt || datatype_ == xsd::kLong) {
    return true;
  }
  if (datatype_.empty() && lang_.empty()) return LexicalLooksNumeric(lexical_);
  return false;
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlankNode:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

size_t Term::Hash() const {
  size_t h = std::hash<std::string>()(lexical_);
  h = h * 31 + std::hash<std::string>()(datatype_);
  h = h * 31 + std::hash<std::string>()(lang_);
  h = h * 31 + static_cast<size_t>(kind_);
  return h;
}

}  // namespace rdfa::rdf
