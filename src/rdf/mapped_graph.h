#ifndef RDFA_RDF_MAPPED_GRAPH_H_
#define RDFA_RDF_MAPPED_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fs/mmap_file.h"
#include "rdf/graph_stats.h"
#include "rdf/term.h"
#include "rdf/term_table.h"

namespace rdfa::rdf {

/// Read-only view over an RDFA3 compressed snapshot, usually backed by an
/// mmap of the file (see binary_io.h for the writer and the section
/// layout). Opening the view parses and validates the section table, the
/// per-section headers, the (small) stats and generation blocks, and the
/// datatype/language dictionaries — but decodes **no** terms and **no**
/// posting lists. Both dictionaries of work are paid lazily:
///
///  - Triple scans decode vbyte/difference-coded key blocks per range scan:
///    a bound-prefix lookup touches only the O(1) blocks overlapping its
///    range, never the whole permutation.
///  - Term lookups decode the front-coded term dictionary per 16-term
///    block; the TermTable above materializes per-chunk on first touch.
///
/// The view is immutable and internally stateless after Open, so any number
/// of threads may scan it concurrently; rdf::Graph uses it as an alternate
/// storage backend behind ForEachInPerm/EstimateInPerm (see graph.h).
class MappedGraphView : public TermDictSource {
 public:
  /// Keys of one sorted permutation, in permuted lane order — identical
  /// ordering to the heap Graph's private index entries.
  struct PermKey {
    uint32_t a = 0, b = 0, c = 0;
    friend bool operator<(const PermKey& x, const PermKey& y) {
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.c < y.c;
    }
  };

  /// Keys per compressed permutation block. A range scan decodes whole
  /// blocks, so this bounds both the wasted decode at range edges and the
  /// stack scratch a scan needs (128 * 12 B).
  static constexpr size_t kPermBlock = 128;
  /// Terms per front-coded dictionary block (prefix compression restarts
  /// at every block boundary).
  static constexpr size_t kTermBlock = 16;

  /// Maps `path` and parses/validates the snapshot structure. ParseError
  /// for anything that is not a structurally sound RDFA3 file.
  static Result<std::shared_ptr<const MappedGraphView>> Open(
      const std::string& path);

  /// Parses a snapshot already in memory. `backing` (nullable) is retained
  /// so the bytes outlive the view; when null, `data` must outlive it.
  static Result<std::shared_ptr<const MappedGraphView>> Parse(
      std::string_view data, std::shared_ptr<const fs::MmapFile> backing);

  size_t triple_count() const { return perms_[0].key_count; }
  size_t file_bytes() const { return data_.size(); }
  bool mmap_backed() const { return backing_ != nullptr && backing_->mapped(); }

  // TermDictSource ---------------------------------------------------------
  size_t term_count() const override { return n_terms_; }
  Term DecodeTerm(TermId id) const override;
  void DecodeRange(TermId begin, TermId end, Term* out) const override;

  const GraphStats& stats() const { return stats_; }
  uint64_t generation() const { return generation_; }
  const std::vector<std::pair<TermId, uint64_t>>& predicate_generations()
      const {
    return pred_gens_;
  }

  // Permutation scans. `perm` mirrors Graph::Perm: 0 = SPO, 1 = POS,
  // 2 = OSP. ----------------------------------------------------------------

  /// Exact [lo, hi) position range whose *leading* bound run matches the
  /// permuted probe (kNoTermId lanes are wildcards) — byte-for-byte the
  /// same semantics as the heap Graph's binary-searched Range, so width
  /// estimates agree across backends.
  std::pair<size_t, size_t> Range(int perm, PermKey probe) const;

  /// Width of the range a scan would narrow to; exact.
  size_t EstimateInPerm(int perm, TermId s, TermId p, TermId o) const {
    return RangeWidth(perm, Permute(perm, s, p, o));
  }

  /// Decodes permutation block `block` into `out` (capacity >= kPermBlock);
  /// returns the number of keys decoded.
  size_t DecodeKeyBlock(int perm, size_t block, PermKey* out) const;

  /// Global position of the first key >= `probe` (a fully-bound permuted
  /// key) — the public twin of the internal binary search. Streaming merge
  /// cursors use it to seek past non-matching keys (sideways information
  /// passing) touching only the per-block index entries, never the skipped
  /// posting-list blocks themselves.
  size_t LowerBoundPos(int perm, const PermKey& probe) const {
    return LowerBound(perm, probe);
  }

  /// Enumerates matches in the permutation's sort order, decoding only the
  /// blocks overlapping the narrowed range — the mapped twin of the heap
  /// Graph's ScanIndex, including the inline filter on non-prefix lanes.
  template <typename Fn>
  void ForEachInPerm(int perm, TermId s, TermId p, TermId o, Fn&& fn) const {
    const PermKey probe = Permute(perm, s, p, o);
    const auto [lo, hi] = Range(perm, probe);
    if (lo >= hi) return;
    PermKey block[kPermBlock];
    const size_t b0 = lo / kPermBlock;
    const size_t b1 = (hi - 1) / kPermBlock;
    for (size_t b = b0; b <= b1; ++b) {
      const size_t count = DecodeKeyBlock(perm, b, block);
      const size_t base = b * kPermBlock;
      const size_t begin = b == b0 ? lo - base : 0;
      const size_t end = std::min(count, hi - base);
      for (size_t i = begin; i < end; ++i) {
        const PermKey& k = block[i];
        if ((probe.b == kNoTermId || k.b == probe.b) &&
            (probe.c == kNoTermId || k.c == probe.c)) {
          fn(Unpermute(perm, k));
        }
      }
    }
  }

  /// Lazy-decode observability counters: relaxed, monotonically rising for
  /// the view's lifetime. The executor snapshots them before/after a query
  /// to attribute decode work ("mmap-decode" span + rdfa_mmap_* counters);
  /// relaxed increments on the const scan path keep results byte-identical
  /// whether or not anyone reads them.
  struct DecodeCounters {
    uint64_t key_blocks_decoded = 0;
    uint64_t term_blocks_decoded = 0;
    uint64_t dict_lookups = 0;
    uint64_t blocks_skipped = 0;  ///< merge-cursor SeekGE block skips
  };
  DecodeCounters decode_counters() const {
    return DecodeCounters{
        key_blocks_decoded_.load(std::memory_order_relaxed),
        term_blocks_decoded_.load(std::memory_order_relaxed),
        dict_lookups_.load(std::memory_order_relaxed),
        blocks_skipped_.load(std::memory_order_relaxed)};
  }
  /// Credits block skips a merge cursor's SeekGE achieved (graph.cc calls
  /// this from the mapped cursor flavor).
  void AddBlocksSkipped(uint64_t n) const {
    blocks_skipped_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Permutes a pattern into `perm`'s lane order (wildcards preserved).
  static PermKey Permute(int perm, TermId s, TermId p, TermId o) {
    switch (perm) {
      case 1: return {p, o, s};
      case 2: return {o, s, p};
      default: return {s, p, o};
    }
  }

  static TripleId Unpermute(int perm, const PermKey& k) {
    switch (perm) {
      case 1: return {k.c, k.a, k.b};
      case 2: return {k.b, k.c, k.a};
      default: return {k.a, k.b, k.c};
    }
  }

 private:
  struct PermSection {
    uint64_t key_count = 0;
    uint64_t n_blocks = 0;
    const char* index = nullptr;  ///< n_blocks entries of 20 bytes
    const char* blob = nullptr;
    size_t blob_len = 0;
  };

  MappedGraphView() = default;
  Status Init(std::string_view data);
  Status InitTerms(std::string_view sec);
  Status InitPerm(int perm, std::string_view sec);
  Status InitStats(std::string_view sec);
  Status InitGenerations(std::string_view sec);

  PermKey IndexKey(const PermSection& ps, size_t block) const;
  uint64_t IndexOffset(const PermSection& ps, size_t block) const;
  size_t LowerBound(int perm, const PermKey& probe) const;
  size_t UpperBound(int perm, const PermKey& probe) const;
  size_t RangeWidth(int perm, PermKey probe) const {
    const auto [lo, hi] = Range(perm, probe);
    return hi - lo;
  }
  /// Decodes dictionary block `block` (kTermBlock terms) into `out`;
  /// returns the number decoded.
  size_t DecodeTermBlock(size_t block, Term* out) const;

  std::shared_ptr<const fs::MmapFile> backing_;
  std::string_view data_;

  // TERMS section.
  uint64_t n_terms_ = 0;
  std::vector<std::string> datatypes_;
  std::vector<std::string> langs_;
  uint64_t n_term_blocks_ = 0;
  const char* term_offsets_ = nullptr;  ///< n_term_blocks_ u64 offsets
  const char* term_blob_ = nullptr;
  size_t term_blob_len_ = 0;

  PermSection perms_[3];
  GraphStats stats_;
  uint64_t generation_ = 0;
  std::vector<std::pair<TermId, uint64_t>> pred_gens_;

  // Decode counters (mutable: the view is logically immutable and shared
  // const; counting decodes does not change observable scan results).
  mutable std::atomic<uint64_t> key_blocks_decoded_{0};
  mutable std::atomic<uint64_t> term_blocks_decoded_{0};
  mutable std::atomic<uint64_t> dict_lookups_{0};
  mutable std::atomic<uint64_t> blocks_skipped_{0};
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_MAPPED_GRAPH_H_
