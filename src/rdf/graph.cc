#include "rdf/graph.h"

#include <mutex>

namespace rdfa::rdf {

bool Graph::Add(const Term& s, const Term& p, const Term& o) {
  TripleId t{terms_.Intern(s), terms_.Intern(p), terms_.Intern(o)};
  return AddIds(t);
}

bool Graph::AddIds(TripleId t) {
  if (!triple_set_.insert(t).second) return false;
  triples_.push_back(t);
  dirty_.store(true, std::memory_order_release);
  return true;
}

bool Graph::Contains(TermId s, TermId p, TermId o) const {
  return triple_set_.count(TripleId{s, p, o}) > 0;
}

size_t Graph::RemoveMatching(TermId s, TermId p, TermId o) {
  size_t before = triples_.size();
  std::vector<TripleId> kept;
  kept.reserve(triples_.size());
  for (const TripleId& t : triples_) {
    bool matches = (s == kNoTermId || t.s == s) &&
                   (p == kNoTermId || t.p == p) &&
                   (o == kNoTermId || t.o == o);
    if (matches) {
      triple_set_.erase(t);
    } else {
      kept.push_back(t);
    }
  }
  triples_ = std::move(kept);
  dirty_.store(true, std::memory_order_release);
  return before - triples_.size();
}

std::vector<TripleId> Graph::Match(TermId s, TermId p, TermId o) const {
  std::vector<TripleId> out;
  ForEachMatch(s, p, o, [&](const TripleId& t) { out.push_back(t); });
  return out;
}

size_t Graph::CountMatch(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  ForEachMatch(s, p, o, [&](const TripleId&) { ++n; });
  return n;
}

size_t Graph::EstimateMatch(TermId s, TermId p, TermId o) const {
  if (s == kNoTermId && p == kNoTermId && o == kNoTermId) {
    return triples_.size();
  }
  EnsureIndexes();
  if (s != kNoTermId) {
    auto [lo, hi] = Range(spo_, {s, p, o});
    return hi - lo;
  }
  if (p != kNoTermId) {
    auto [lo, hi] = Range(pos_, {p, o, s});
    return hi - lo;
  }
  auto [lo, hi] = Range(osp_, {o, s, p});
  return hi - lo;
}

std::pair<size_t, size_t> Graph::Range(const std::vector<Key>& index,
                                       const Key& key) {
  // Build lower/upper probe keys: bound prefix lanes stay, the first
  // wildcard lane (and everything after) goes to 0 / MAX.
  Key lo_key = key, hi_key = key;
  bool wildcard = false;
  TermId* lo_lanes[3] = {&lo_key.a, &lo_key.b, &lo_key.c};
  TermId* hi_lanes[3] = {&hi_key.a, &hi_key.b, &hi_key.c};
  const TermId lanes[3] = {key.a, key.b, key.c};
  for (int i = 0; i < 3; ++i) {
    if (wildcard || lanes[i] == kNoTermId) {
      wildcard = true;
      *lo_lanes[i] = 0;
      *hi_lanes[i] = kNoTermId;  // MAX value; never a real id.
    }
  }
  auto lo = std::lower_bound(index.begin(), index.end(), lo_key);
  auto hi = std::upper_bound(index.begin(), index.end(), hi_key);
  return {static_cast<size_t>(lo - index.begin()),
          static_cast<size_t>(hi - index.begin())};
}

void Graph::EnsureIndexes() const {
  // Fast path: the acquire load pairs with the release store below, so a
  // reader that sees dirty_ == false also sees the fully built indexes.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  // Another reader may have rebuilt while we waited for the lock.
  if (!dirty_.load(std::memory_order_relaxed)) return;
  ++index_generation_;
  spo_.clear();
  pos_.clear();
  osp_.clear();
  spo_.reserve(triples_.size());
  pos_.reserve(triples_.size());
  osp_.reserve(triples_.size());
  for (const TripleId& t : triples_) {
    spo_.push_back({t.s, t.p, t.o});
    pos_.push_back({t.p, t.o, t.s});
    osp_.push_back({t.o, t.s, t.p});
  }
  std::sort(spo_.begin(), spo_.end());
  std::sort(pos_.begin(), pos_.end());
  std::sort(osp_.begin(), osp_.end());
  dirty_.store(false, std::memory_order_release);
}

}  // namespace rdfa::rdf
