#include "rdf/graph.h"

#include <mutex>
#include <tuple>

namespace rdfa::rdf {

void Graph::AttachMapped(std::shared_ptr<const MappedGraphView> view) {
  view_ = std::move(view);
  terms_.AttachDict(view_);
  stats_ = view_->stats();
  generation_.store(view_->generation(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pred_mu_);
    pred_gens_.clear();
    const auto& gens = view_->predicate_generations();
    pred_gens_.insert(gens.begin(), gens.end());
  }
  triples_ready_.store(false, std::memory_order_release);
  // The snapshot *is* the index: nothing to rebuild, stats came with it.
  // Secondaries are not in the format — they rebuild lazily off the view.
  sec_dirty_.store(true, std::memory_order_release);
  stats_dirty_.store(false, std::memory_order_release);
  dirty_.store(false, std::memory_order_release);
}

void Graph::MaterializeTriples() const {
  std::lock_guard<std::mutex> lock(materialize_mu_);
  if (triples_ready_.load(std::memory_order_relaxed)) return;
  triples_.reserve(view_->triple_count());
  view_->ForEachInPerm(kPermSPO, kNoTermId, kNoTermId, kNoTermId,
                       [&](const TripleId& t) { triples_.push_back(t); });
  triples_ready_.store(true, std::memory_order_release);
}

void Graph::MaterializeForWrite() {
  if (view_ == nullptr) return;
  if (!triples_ready_.load(std::memory_order_acquire)) MaterializeTriples();
  triple_set_.reserve(triples_.size());
  for (const TripleId& t : triples_) triple_set_.insert(t);
  // From here on this is a plain heap graph; the TermTable keeps its own
  // reference to the dictionary, so lazily decoded terms stay valid.
  view_.reset();
  dirty_.store(true, std::memory_order_release);
}

bool Graph::Add(const Term& s, const Term& p, const Term& o) {
  TripleId t{terms_.Intern(s), terms_.Intern(p), terms_.Intern(o)};
  return AddIds(t);
}

bool Graph::AddIds(TripleId t) {
  MaterializeForWrite();
  if (!triple_set_.insert(t).second) return false;
  triples_.push_back(t);
  const uint64_t gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    std::lock_guard<std::mutex> lock(pred_mu_);
    pred_gens_[t.p] = gen;
  }
  stats_dirty_.store(true, std::memory_order_relaxed);
  sec_dirty_.store(true, std::memory_order_relaxed);
  dirty_.store(true, std::memory_order_release);
  return true;
}

bool Graph::Contains(TermId s, TermId p, TermId o) const {
  if (view_ != nullptr) {
    // Fully bound probe: the SPO range width is the exact membership count.
    return view_->EstimateInPerm(kPermSPO, s, p, o) > 0;
  }
  return triple_set_.count(TripleId{s, p, o}) > 0;
}

size_t Graph::RemoveMatching(TermId s, TermId p, TermId o) {
  MaterializeForWrite();
  size_t before = triples_.size();
  std::vector<TripleId> kept;
  kept.reserve(triples_.size());
  std::unordered_set<TermId> touched_preds;
  for (const TripleId& t : triples_) {
    bool matches = (s == kNoTermId || t.s == s) &&
                   (p == kNoTermId || t.p == p) &&
                   (o == kNoTermId || t.o == o);
    if (matches) {
      triple_set_.erase(t);
      touched_preds.insert(t.p);
    } else {
      kept.push_back(t);
    }
  }
  triples_ = std::move(kept);
  // The generation only moves when the triple set actually changed; a
  // no-match removal keeps every cached artifact valid. Only the predicates
  // of actually-removed triples advance their epochs.
  if (triples_.size() != before) {
    const uint64_t gen =
        generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::lock_guard<std::mutex> lock(pred_mu_);
    for (TermId pred : touched_preds) pred_gens_[pred] = gen;
  }
  stats_dirty_.store(true, std::memory_order_relaxed);
  sec_dirty_.store(true, std::memory_order_relaxed);
  dirty_.store(true, std::memory_order_release);
  return before - triples_.size();
}

uint64_t Graph::FootprintStamp(const CacheFootprint& fp) const {
  if (fp.wildcard) return Generation();
  uint64_t sum = 0;
  for (const std::string& iri : fp.predicates) {
    const TermId p = terms_.FindIri(iri);
    // An un-interned predicate has epoch 0; if it is later interned by a
    // mutation its epoch jumps to that mutation's generation, so the stamp
    // still moves.
    if (p != kNoTermId) sum += PredicateGeneration(p);
  }
  return sum;
}

std::unique_ptr<Graph> Graph::Clone() const {
  auto copy = std::make_unique<Graph>();
  copy->terms_.CopyFrom(terms_);
  // A clone is always a plain heap graph: an MVCC commit mutates it
  // immediately, so materializing here (not lazily in the copy) keeps the
  // mapped original untouched and shareable.
  copy->triples_ = triples();
  if (view_ != nullptr) {
    copy->triple_set_.reserve(copy->triples_.size());
    for (const TripleId& t : copy->triples_) copy->triple_set_.insert(t);
  } else {
    copy->triple_set_ = triple_set_;
  }
  copy->generation_.store(generation_.load(std::memory_order_acquire),
                          std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pred_mu_);
    copy->pred_gens_ = pred_gens_;
  }
  // Indexes and stats rebuild lazily on the copy's first Freeze()/read;
  // the source's mutable index state is deliberately not touched here, so
  // cloning is safe under concurrent const readers.
  return copy;
}

std::vector<TripleId> Graph::Match(TermId s, TermId p, TermId o) const {
  std::vector<TripleId> out;
  ForEachMatch(s, p, o, [&](const TripleId& t) { out.push_back(t); });
  return out;
}

size_t Graph::CountMatch(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  ForEachMatch(s, p, o, [&](const TripleId&) { ++n; });
  return n;
}

size_t Graph::EstimateMatch(TermId s, TermId p, TermId o) const {
  if (s == kNoTermId && p == kNoTermId && o == kNoTermId) {
    return size();
  }
  if (view_ != nullptr) {
    // Exact on both backends, so join orders (and thus result byte order)
    // never depend on which backend serves the query.
    return view_->EstimateInPerm(
        ChoosePerm(s != kNoTermId, p != kNoTermId, o != kNoTermId), s, p, o);
  }
  EnsureIndexes();
  // Longest-bound-prefix selection: every subset of {s, p, o} is a complete
  // prefix of one permutation (3-arg ChoosePerm only picks primaries), so
  // the range width is the exact match count.
  return EstimateInPerm(
      ChoosePerm(s != kNoTermId, p != kNoTermId, o != kNoTermId), s, p, o);
}

size_t Graph::EstimateInPerm(Perm perm, TermId s, TermId p, TermId o) const {
  if (view_ != nullptr && perm <= kPermOSP) {
    return view_->EstimateInPerm(perm, s, p, o);
  }
  auto [lo, hi] = Range(IndexFor(perm), PermuteKey(perm, s, p, o));
  return hi - lo;
}

const std::vector<Graph::Key>& Graph::IndexFor(Perm perm) const {
  if (perm >= kPermPSO) {
    EnsureSecondaryIndexes();
    switch (perm) {
      case kPermSOP: return sop_;
      case kPermOPS: return ops_;
      default: return pso_;
    }
  }
  EnsureIndexes();
  switch (perm) {
    case kPermPOS: return pos_;
    case kPermOSP: return osp_;
    default: return spo_;
  }
}

std::pair<size_t, size_t> Graph::Range(const std::vector<Key>& index,
                                       const Key& key) {
  // Build lower/upper probe keys: bound prefix lanes stay, the first
  // wildcard lane (and everything after) goes to 0 / MAX.
  Key lo_key = key, hi_key = key;
  bool wildcard = false;
  TermId* lo_lanes[3] = {&lo_key.a, &lo_key.b, &lo_key.c};
  TermId* hi_lanes[3] = {&hi_key.a, &hi_key.b, &hi_key.c};
  const TermId lanes[3] = {key.a, key.b, key.c};
  for (int i = 0; i < 3; ++i) {
    if (wildcard || lanes[i] == kNoTermId) {
      wildcard = true;
      *lo_lanes[i] = 0;
      *hi_lanes[i] = kNoTermId;  // MAX value; never a real id.
    }
  }
  auto lo = std::lower_bound(index.begin(), index.end(), lo_key);
  auto hi = std::upper_bound(index.begin(), index.end(), hi_key);
  return {static_cast<size_t>(lo - index.begin()),
          static_cast<size_t>(hi - index.begin())};
}

void Graph::EnsureIndexes() const {
  // Fast path: the acquire load pairs with the release store below, so a
  // reader that sees dirty_ == false also sees the fully built indexes.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  // Another reader may have rebuilt while we waited for the lock.
  if (!dirty_.load(std::memory_order_relaxed)) return;
  ++index_generation_;
  spo_.clear();
  pos_.clear();
  osp_.clear();
  spo_.reserve(triples_.size());
  pos_.reserve(triples_.size());
  osp_.reserve(triples_.size());
  for (const TripleId& t : triples_) {
    spo_.push_back({t.s, t.p, t.o});
    pos_.push_back({t.p, t.o, t.s});
    osp_.push_back({t.o, t.s, t.p});
  }
  std::sort(spo_.begin(), spo_.end());
  std::sort(pos_.begin(), pos_.end());
  std::sort(osp_.begin(), osp_.end());
  // Stats ride the same rebuild pass unless a snapshot restore already
  // supplied them (RestoreStats clears stats_dirty_ without touching
  // dirty_, so a freshly loaded graph builds indexes but keeps its stats).
  if (stats_dirty_.load(std::memory_order_relaxed)) {
    ComputeStatsLocked();
    stats_dirty_.store(false, std::memory_order_relaxed);
  }
  dirty_.store(false, std::memory_order_release);
}

void Graph::EnsureSecondaryIndexes() const {
  if (!sec_dirty_.load(std::memory_order_acquire)) return;
  // triples() may materialize a mapped graph's list (its own mutex); taken
  // before sec_mu_ so the two locks never nest the other way.
  const std::vector<TripleId>& ts = triples();
  std::unique_lock<std::shared_mutex> lock(sec_mu_);
  if (!sec_dirty_.load(std::memory_order_relaxed)) return;
  pso_.clear();
  sop_.clear();
  ops_.clear();
  pso_.reserve(ts.size());
  sop_.reserve(ts.size());
  ops_.reserve(ts.size());
  for (const TripleId& t : ts) {
    pso_.push_back({t.p, t.s, t.o});
    sop_.push_back({t.s, t.o, t.p});
    ops_.push_back({t.o, t.p, t.s});
  }
  std::sort(pso_.begin(), pso_.end());
  std::sort(sop_.begin(), sop_.end());
  std::sort(ops_.begin(), ops_.end());
  sec_dirty_.store(false, std::memory_order_release);
}

Graph::MergeCursor Graph::OpenMergeCursor(Perm perm, TermId s, TermId p,
                                          TermId o) const {
  MergeCursor cur;
  cur.perm_ = perm;
  const Key probe = PermuteKey(perm, s, p, o);
  cur.merge_lane_ = probe.a == kNoTermId ? 0 : probe.b == kNoTermId ? 1 : 2;
  cur.prefix_ = Key{probe.a == kNoTermId ? 0 : probe.a,
                    probe.b == kNoTermId ? 0 : probe.b,
                    probe.c == kNoTermId ? 0 : probe.c};
  size_t lo = 0, hi = 0;
  if (view_ != nullptr && perm <= kPermOSP) {
    cur.view_ = view_.get();
    std::tie(lo, hi) = view_->Range(static_cast<int>(perm),
                                    MappedGraphView::PermKey{probe.a, probe.b,
                                                             probe.c});
  } else {
    const std::vector<Key>& index = IndexFor(perm);
    cur.index_ = &index;
    std::tie(lo, hi) = Range(index, probe);
  }
  cur.lo_ = cur.pos_ = lo;
  cur.hi_ = hi;
  if (cur.pos_ < cur.hi_) cur.decoded_ = 1;
  return cur;
}

Graph::Key Graph::MergeCursor::Entry() const {
  if (index_ != nullptr) return (*index_)[pos_];
  const size_t b = pos_ / MappedGraphView::kPermBlock;
  if (b != block_id_) {
    block_.resize(MappedGraphView::kPermBlock);
    view_->DecodeKeyBlock(static_cast<int>(perm_), b, block_.data());
    block_id_ = b;
  }
  const MappedGraphView::PermKey& k =
      block_[pos_ % MappedGraphView::kPermBlock];
  return Key{k.a, k.b, k.c};
}

void Graph::MergeCursor::SeekGE(TermId v) {
  ++seeks_;
  if (at_end() || key() >= v) return;
  Key probe = prefix_;
  switch (merge_lane_) {
    case 0: probe.a = v; probe.b = 0; probe.c = 0; break;
    case 1: probe.b = v; probe.c = 0; break;
    default: probe.c = v; break;
  }
  size_t target;
  if (index_ != nullptr) {
    target = static_cast<size_t>(
        std::lower_bound(index_->begin() + pos_, index_->begin() + hi_,
                         probe) -
        index_->begin());
  } else {
    // The global lower bound is monotone with the seek keys, so it can
    // never land before the current position.
    target = view_->LowerBoundPos(
        static_cast<int>(perm_),
        MappedGraphView::PermKey{probe.a, probe.b, probe.c});
    target = std::max(target, pos_);
    // Credit posting-list blocks the seek jumped over without decoding
    // (the SIP win the observability layer surfaces per query).
    const size_t from_block = pos_ / MappedGraphView::kPermBlock;
    const size_t to_block =
        std::min(target, hi_) / MappedGraphView::kPermBlock;
    if (to_block > from_block) {
      view_->AddBlocksSkipped(to_block - from_block);
    }
  }
  pos_ = std::min(target, hi_);
  if (pos_ < hi_) ++decoded_;
}

void Graph::ComputeStatsLocked() const {
  stats_ = GraphStats{};
  stats_.triples = triples_.size();
  // Global distincts: each permutation groups by its first lane.
  for (size_t i = 0; i < spo_.size(); ++i) {
    if (i == 0 || spo_[i].a != spo_[i - 1].a) ++stats_.distinct_subjects;
  }
  for (size_t i = 0; i < osp_.size(); ++i) {
    if (i == 0 || osp_[i].a != osp_[i - 1].a) ++stats_.distinct_objects;
  }
  // Per-predicate triple + distinct-object counts from POS (p, o, s): a new
  // `a` starts a predicate group, a new (a, b) pair a distinct object.
  for (size_t i = 0; i < pos_.size(); ++i) {
    PredicateStats& ps = stats_.by_predicate[pos_[i].a];
    ++ps.triples;
    if (i == 0 || pos_[i].a != pos_[i - 1].a || pos_[i].b != pos_[i - 1].b) {
      ++ps.distinct_objects;
    }
  }
  stats_.distinct_predicates = stats_.by_predicate.size();
  // Distinct subjects per predicate from SPO (s, p, o): each distinct
  // (s, p) pair contributes one subject to predicate p.
  for (size_t i = 0; i < spo_.size(); ++i) {
    if (i == 0 || spo_[i].a != spo_[i - 1].a || spo_[i].b != spo_[i - 1].b) {
      ++stats_.by_predicate[spo_[i].b].distinct_subjects;
    }
  }
}

}  // namespace rdfa::rdf
