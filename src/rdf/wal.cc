#include "rdf/wal.h"

#include <unistd.h>

#include <array>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/metrics.h"

namespace rdfa::rdf {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Histogram& AppendLatency() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "rdfa_wal_append_ms", Histogram::LatencyBoundsMs(),
      "WAL frame encode+write latency (excluding fsync)");
  return h;
}

Histogram& FsyncLatency() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "rdfa_wal_fsync_ms", Histogram::LatencyBoundsMs(),
      "WAL flush+fsync latency");
  return h;
}

// Frame header: payload length + CRC, both u32 little-endian.
constexpr size_t kHeaderBytes = 8;
// Defensive ceiling against reading a garbage length from a torn header.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(const std::string& in, size_t* pos, std::string* out) {
  if (*pos + 4 > in.size()) return false;
  uint32_t n = GetU32(reinterpret_cast<const unsigned char*>(in.data()) + *pos);
  *pos += 4;
  if (*pos + n > in.size()) return false;
  out->assign(in, *pos, n);
  *pos += n;
  return true;
}

void PutTerm(std::string* out, const Term& t) {
  out->push_back(static_cast<char>(t.kind()));
  PutString(out, t.lexical());
  PutString(out, t.datatype());
  PutString(out, t.lang());
}

bool GetTerm(const std::string& in, size_t* pos, Term* out) {
  if (*pos + 1 > in.size()) return false;
  const auto kind = static_cast<TermKind>(in[(*pos)++]);
  std::string lexical, datatype, lang;
  if (!GetString(in, pos, &lexical) || !GetString(in, pos, &datatype) ||
      !GetString(in, pos, &lang)) {
    return false;
  }
  switch (kind) {
    case TermKind::kIri: *out = Term::Iri(std::move(lexical)); return true;
    case TermKind::kBlankNode:
      *out = Term::Blank(std::move(lexical));
      return true;
    case TermKind::kLiteral:
      if (!lang.empty()) {
        *out = Term::LangLiteral(std::move(lexical), std::move(lang));
      } else if (!datatype.empty()) {
        *out = Term::TypedLiteral(std::move(lexical), std::move(datatype));
      } else {
        *out = Term::Literal(std::move(lexical));
      }
      return true;
  }
  return false;
}

std::string EncodePayload(const WalRecord& rec) {
  std::string out;
  out.push_back(static_cast<char>(rec.op));
  if (rec.op == WalRecord::Op::kUpdate) {
    PutString(&out, rec.update);
    return out;
  }
  const std::pair<bool, const Term*> lanes[3] = {
      {rec.has_s, &rec.s}, {rec.has_p, &rec.p}, {rec.has_o, &rec.o}};
  for (const auto& [present, term] : lanes) {
    out.push_back(present ? 1 : 0);
    if (present) PutTerm(&out, *term);
  }
  return out;
}

bool DecodePayload(const std::string& in, WalRecord* rec) {
  if (in.empty()) return false;
  size_t pos = 0;
  const auto op = static_cast<WalRecord::Op>(in[pos++]);
  if (op != WalRecord::Op::kInsert && op != WalRecord::Op::kRemove &&
      op != WalRecord::Op::kUpdate) {
    return false;
  }
  rec->op = op;
  if (op == WalRecord::Op::kUpdate) {
    return GetString(in, &pos, &rec->update) && pos == in.size();
  }
  const std::array<std::pair<bool*, Term*>, 3> lanes = {{
      {&rec->has_s, &rec->s}, {&rec->has_p, &rec->p}, {&rec->has_o, &rec->o}}};
  for (const auto& [present, term] : lanes) {
    if (pos + 1 > in.size()) return false;
    *present = in[pos++] != 0;
    if (*present && !GetTerm(in, &pos, term)) return false;
  }
  return pos == in.size();
}

}  // namespace

WalRecord WalRecord::Insert(Term s, Term p, Term o) {
  WalRecord rec;
  rec.op = Op::kInsert;
  rec.has_s = rec.has_p = rec.has_o = true;
  rec.s = std::move(s);
  rec.p = std::move(p);
  rec.o = std::move(o);
  return rec;
}

WalRecord WalRecord::Remove(bool has_s, Term s, bool has_p, Term p, bool has_o,
                            Term o) {
  WalRecord rec;
  rec.op = Op::kRemove;
  rec.has_s = has_s;
  rec.has_p = has_p;
  rec.has_o = has_o;
  if (has_s) rec.s = std::move(s);
  if (has_p) rec.p = std::move(p);
  if (has_o) rec.o = std::move(o);
  return rec;
}

WalRecord WalRecord::Update(std::string sparql) {
  WalRecord rec;
  rec.op = Op::kUpdate;
  rec.update = std::move(sparql);
  return rec;
}

uint32_t WalCrc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  ReplayResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no log yet: empty replay
  std::string payload;
  while (true) {
    unsigned char header[kHeaderBytes];
    const size_t got = std::fread(header, 1, kHeaderBytes, f);
    if (got < kHeaderBytes) break;  // clean EOF or torn header
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxPayloadBytes) break;  // garbage length: torn tail
    payload.resize(len);
    if (len > 0 && std::fread(payload.data(), 1, len, f) < len) break;
    if (WalCrc32(payload.data(), payload.size()) != crc) break;
    WalRecord rec;
    if (!DecodePayload(payload, &rec)) break;
    out.records.push_back(std::move(rec));
    out.clean_bytes += kHeaderBytes + len;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fclose(f);
  if (end > 0 && static_cast<uint64_t>(end) > out.clean_bytes) {
    out.truncated_bytes = static_cast<uint64_t>(end) - out.clean_bytes;
  }
  return out;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, size_t sync_every) {
  RDFA_ASSIGN_OR_RETURN(ReplayResult replayed, Replay(path));
  if (replayed.truncated_bytes > 0) {
    // Drop the torn tail so new frames never follow garbage.
    if (::truncate(path.c_str(),
                   static_cast<off_t>(replayed.clean_bytes)) != 0) {
      return Status::Internal("wal: failed to truncate torn tail of " + path);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("wal: cannot open " + path + " for append");
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, f, sync_every == 0 ? 1 : sync_every));
}

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file,
                             size_t sync_every)
    : path_(std::move(path)), file_(file), sync_every_(sync_every) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) {
    Sync();
    std::fclose(file_);
  }
}

Status WriteAheadLog::Append(const WalRecord& rec) {
  const auto start = std::chrono::steady_clock::now();
  const std::string payload = EncodePayload(rec);
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, WalCrc32(payload.data(), payload.size()));
  frame.append(payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) < frame.size()) {
    return Status::Internal("wal: short write to " + path_);
  }
  ++appended_;
  AppendLatency().Observe(MsSince(start));
  if (++since_sync_ >= sync_every_) return Sync();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  const auto start = std::chrono::steady_clock::now();
  since_sync_ = 0;
  if (std::fflush(file_) != 0) {
    return Status::Internal("wal: fflush failed for " + path_);
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::Internal("wal: fsync failed for " + path_);
  }
  FsyncLatency().Observe(MsSince(start));
  return Status::OK();
}

}  // namespace rdfa::rdf
