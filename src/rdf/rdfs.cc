#include "rdf/rdfs.h"

#include <deque>

#include "rdf/namespaces.h"

namespace rdfa::rdf {

Vocab::Vocab(Graph* graph) {
  TermTable& t = graph->terms();
  type = t.InternIri(rdfns::kType);
  rdfs_class = t.InternIri(rdfsns::kClass);
  rdf_property = t.InternIri(rdfns::kProperty);
  sub_class_of = t.InternIri(rdfsns::kSubClassOf);
  sub_property_of = t.InternIri(rdfsns::kSubPropertyOf);
  domain = t.InternIri(rdfsns::kDomain);
  range = t.InternIri(rdfsns::kRange);
  label = t.InternIri(rdfsns::kLabel);
}

SchemaView::SchemaView(const Graph& graph, const Vocab& v) {
  // Declared classes.
  graph.ForEachMatch(kNoTermId, v.type, v.rdfs_class,
                     [&](const TripleId& t) { classes_.insert(t.s); });
  // Classes used as rdf:type objects.
  graph.ForEachMatch(kNoTermId, v.type, kNoTermId, [&](const TripleId& t) {
    if (t.o != v.rdfs_class && t.o != v.rdf_property) classes_.insert(t.o);
  });
  // Classes appearing in subClassOf.
  graph.ForEachMatch(kNoTermId, v.sub_class_of, kNoTermId,
                     [&](const TripleId& t) {
                       classes_.insert(t.s);
                       classes_.insert(t.o);
                       super_class_[t.s].insert(t.o);
                       sub_class_[t.o].insert(t.s);
                     });
  // Declared properties.
  graph.ForEachMatch(kNoTermId, v.type, v.rdf_property,
                     [&](const TripleId& t) { properties_.insert(t.s); });
  graph.ForEachMatch(kNoTermId, v.sub_property_of, kNoTermId,
                     [&](const TripleId& t) {
                       properties_.insert(t.s);
                       properties_.insert(t.o);
                       super_prop_[t.s].insert(t.o);
                       sub_prop_[t.o].insert(t.s);
                     });
  graph.ForEachMatch(kNoTermId, v.domain, kNoTermId, [&](const TripleId& t) {
    properties_.insert(t.s);
    classes_.insert(t.o);
    domain_[t.s].insert(t.o);
  });
  graph.ForEachMatch(kNoTermId, v.range, kNoTermId, [&](const TripleId& t) {
    properties_.insert(t.s);
    range_[t.s].insert(t.o);
  });
  // Properties used as predicates (minus the vocabulary itself).
  const std::set<TermId> vocab_props = {v.type, v.sub_class_of,
                                        v.sub_property_of, v.domain, v.range,
                                        v.label};
  for (const TripleId& t : graph.triples()) {
    if (vocab_props.count(t.p) == 0) properties_.insert(t.p);
  }
}

std::set<TermId> SchemaView::Closure(
    const std::map<TermId, std::set<TermId>>& edges, TermId start) {
  std::set<TermId> seen = {start};
  std::deque<TermId> work = {start};
  while (!work.empty()) {
    TermId cur = work.front();
    work.pop_front();
    auto it = edges.find(cur);
    if (it == edges.end()) continue;
    for (TermId next : it->second) {
      if (seen.insert(next).second) work.push_back(next);
    }
  }
  return seen;
}

std::set<TermId> SchemaView::DirectSuperclasses(TermId c) const {
  auto it = super_class_.find(c);
  return it == super_class_.end() ? std::set<TermId>{} : it->second;
}
std::set<TermId> SchemaView::DirectSubclasses(TermId c) const {
  auto it = sub_class_.find(c);
  return it == sub_class_.end() ? std::set<TermId>{} : it->second;
}
std::set<TermId> SchemaView::Superclasses(TermId c) const {
  return Closure(super_class_, c);
}
std::set<TermId> SchemaView::Subclasses(TermId c) const {
  return Closure(sub_class_, c);
}

std::vector<TermId> SchemaView::MaximalClasses() const {
  std::vector<TermId> out;
  for (TermId c : classes_) {
    auto it = super_class_.find(c);
    if (it == super_class_.end() || it->second.empty()) out.push_back(c);
  }
  return out;
}

std::set<TermId> SchemaView::DirectSuperproperties(TermId p) const {
  auto it = super_prop_.find(p);
  return it == super_prop_.end() ? std::set<TermId>{} : it->second;
}
std::set<TermId> SchemaView::DirectSubproperties(TermId p) const {
  auto it = sub_prop_.find(p);
  return it == sub_prop_.end() ? std::set<TermId>{} : it->second;
}
std::set<TermId> SchemaView::Superproperties(TermId p) const {
  return Closure(super_prop_, p);
}
std::set<TermId> SchemaView::Subproperties(TermId p) const {
  return Closure(sub_prop_, p);
}

std::vector<TermId> SchemaView::MaximalProperties() const {
  std::vector<TermId> out;
  for (TermId p : properties_) {
    auto it = super_prop_.find(p);
    if (it == super_prop_.end() || it->second.empty()) out.push_back(p);
  }
  return out;
}

std::set<TermId> SchemaView::Domains(TermId p) const {
  auto it = domain_.find(p);
  return it == domain_.end() ? std::set<TermId>{} : it->second;
}
std::set<TermId> SchemaView::Ranges(TermId p) const {
  auto it = range_.find(p);
  return it == range_.end() ? std::set<TermId>{} : it->second;
}

size_t MaterializeRdfsClosure(Graph* graph) {
  Vocab v(graph);
  SchemaView schema(*graph, v);
  size_t added = 0;

  // 1. Transitive closure of the subClassOf / subPropertyOf relations
  //    themselves (rdfs5, rdfs11).
  for (TermId c : schema.classes()) {
    for (TermId super : schema.Superclasses(c)) {
      if (super != c && graph->AddIds({c, v.sub_class_of, super})) ++added;
    }
  }
  for (TermId p : schema.properties()) {
    for (TermId super : schema.Superproperties(p)) {
      if (super != p && graph->AddIds({p, v.sub_property_of, super})) ++added;
    }
  }

  // 2. Property-instance propagation through subPropertyOf (rdfs7).
  //    Iterate over a snapshot: new triples use already-closed relations.
  std::vector<TripleId> snapshot = graph->triples();
  for (const TripleId& t : snapshot) {
    std::set<TermId> supers = schema.Superproperties(t.p);
    for (TermId q : supers) {
      if (q != t.p && graph->AddIds({t.s, q, t.o})) ++added;
    }
  }

  // 3. Domain/range typing (rdfs2, rdfs3), over the propagated instances.
  snapshot = graph->triples();
  for (const TripleId& t : snapshot) {
    for (TermId c : schema.Domains(t.p)) {
      if (graph->AddIds({t.s, v.type, c})) ++added;
    }
    for (TermId c : schema.Ranges(t.p)) {
      const Term& obj = graph->terms().Get(t.o);
      if (!obj.is_literal() && graph->AddIds({t.o, v.type, c})) ++added;
    }
  }

  // 4. Type propagation through subClassOf (rdfs9).
  snapshot = graph->Match(kNoTermId, v.type, kNoTermId);
  for (const TripleId& t : snapshot) {
    for (TermId super : schema.Superclasses(t.o)) {
      if (super != t.o && graph->AddIds({t.s, v.type, super})) ++added;
    }
  }
  return added;
}

}  // namespace rdfa::rdf
