#include "rdf/mapped_graph.h"

#include <cstring>

#include "common/vbyte.h"

namespace rdfa::rdf {

namespace {

constexpr char kMagicV3[] = "RDFA3\n";
constexpr size_t kMagicLen = 6;

// Section kinds in the RDFA3 section table.
enum SectionKind : uint32_t {
  kSecTerms = 1,
  kSecPermSpo = 2,
  kSecPermPos = 3,
  kSecPermOsp = 4,
  kSecStats = 5,
  kSecGenerations = 6,
};

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Sequential bounds-checked cursor over one section's bytes. Fixed-width
/// loads are memcpy-based, so nothing in the file needs alignment.
class SpanReader {
 public:
  explicit SpanReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = LoadU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = LoadU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadVbyte(uint64_t* v) {
    VbyteDecoder dec(data_.data() + pos_, data_.size() - pos_);
    if (!dec.Next(v).ok()) return false;
    pos_ += dec.pos();
    return true;
  }

  bool ReadVbyteString(std::string* s) {
    uint64_t len = 0;
    if (!ReadVbyte(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  /// Remaining bytes from the cursor to the end of the span.
  std::string_view Rest() const { return data_.substr(pos_); }
  /// Advances past `n` bytes, returning a pointer to their start (null if
  /// they do not fit).
  const char* Take(size_t n) {
    if (pos_ + n > data_.size()) return nullptr;
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Term MakeTerm(uint8_t kind, std::string lexical, const std::string& datatype,
              const std::string& lang) {
  switch (static_cast<TermKind>(kind)) {
    case TermKind::kIri: return Term::Iri(std::move(lexical));
    case TermKind::kBlankNode: return Term::Blank(std::move(lexical));
    case TermKind::kLiteral:
      if (!lang.empty()) return Term::LangLiteral(std::move(lexical), lang);
      if (!datatype.empty()) {
        return Term::TypedLiteral(std::move(lexical), datatype);
      }
      return Term::Literal(std::move(lexical));
  }
  return Term::Iri(std::move(lexical));
}

const std::string kEmpty;

}  // namespace

Result<std::shared_ptr<const MappedGraphView>> MappedGraphView::Open(
    const std::string& path) {
  RDFA_ASSIGN_OR_RETURN(auto file, fs::MmapFile::Open(path));
  return Parse(file->view(), file);
}

Result<std::shared_ptr<const MappedGraphView>> MappedGraphView::Parse(
    std::string_view data, std::shared_ptr<const fs::MmapFile> backing) {
  auto view = std::shared_ptr<MappedGraphView>(new MappedGraphView());
  view->backing_ = std::move(backing);
  RDFA_RETURN_NOT_OK(view->Init(data));
  return std::shared_ptr<const MappedGraphView>(view);
}

Status MappedGraphView::Init(std::string_view data) {
  data_ = data;
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagicV3, kMagicLen) != 0) {
    return Status::ParseError("bad magic: not an RDFA3 snapshot");
  }
  SpanReader header(data.substr(kMagicLen));
  uint32_t n_sections = 0;
  if (!header.ReadU32(&n_sections) || n_sections > 64) {
    return Status::ParseError("RDFA3: bad section count");
  }
  bool seen[7] = {};
  for (uint32_t i = 0; i < n_sections; ++i) {
    uint32_t kind = 0;
    uint64_t offset = 0, length = 0;
    if (!header.ReadU32(&kind) || !header.ReadU64(&offset) ||
        !header.ReadU64(&length)) {
      return Status::ParseError("RDFA3: truncated section table");
    }
    if (offset > data.size() || length > data.size() - offset) {
      return Status::ParseError("RDFA3: section " + std::to_string(kind) +
                                " exceeds file bounds");
    }
    const std::string_view sec = data.substr(offset, length);
    Status st = Status::OK();
    switch (kind) {
      case kSecTerms: st = InitTerms(sec); break;
      case kSecPermSpo: st = InitPerm(0, sec); break;
      case kSecPermPos: st = InitPerm(1, sec); break;
      case kSecPermOsp: st = InitPerm(2, sec); break;
      case kSecStats: st = InitStats(sec); break;
      case kSecGenerations: st = InitGenerations(sec); break;
      default: continue;  // unknown sections are skippable by design
    }
    RDFA_RETURN_NOT_OK(st);
    if (kind < 7) seen[kind] = true;
  }
  for (uint32_t kind = kSecTerms; kind <= kSecGenerations; ++kind) {
    if (!seen[kind]) {
      return Status::ParseError("RDFA3: missing section " +
                                std::to_string(kind));
    }
  }
  if (perms_[0].key_count != perms_[1].key_count ||
      perms_[0].key_count != perms_[2].key_count) {
    return Status::ParseError("RDFA3: permutation key counts disagree");
  }
  if (stats_.triples != perms_[0].key_count) {
    return Status::ParseError("RDFA3: stats/permutation triple count drift");
  }
  return Status::OK();
}

Status MappedGraphView::InitTerms(std::string_view sec) {
  SpanReader r(sec);
  uint32_t block = 0;
  uint64_t n_dt = 0, n_lang = 0;
  if (!r.ReadU64(&n_terms_) || !r.ReadU32(&block)) {
    return Status::ParseError("RDFA3: truncated term header");
  }
  if (block != kTermBlock) {
    return Status::ParseError("RDFA3: unsupported term block size " +
                              std::to_string(block));
  }
  if (n_terms_ > UINT32_MAX) {
    return Status::ParseError("RDFA3: term count exceeds id space");
  }
  if (!r.ReadU64(&n_dt) || n_dt > sec.size()) {
    return Status::ParseError("RDFA3: truncated datatype dictionary");
  }
  datatypes_.resize(n_dt);
  for (auto& s : datatypes_) {
    if (!r.ReadVbyteString(&s)) {
      return Status::ParseError("RDFA3: truncated datatype dictionary");
    }
  }
  if (!r.ReadU64(&n_lang) || n_lang > sec.size()) {
    return Status::ParseError("RDFA3: truncated language dictionary");
  }
  langs_.resize(n_lang);
  for (auto& s : langs_) {
    if (!r.ReadVbyteString(&s)) {
      return Status::ParseError("RDFA3: truncated language dictionary");
    }
  }
  if (!r.ReadU64(&n_term_blocks_) ||
      n_term_blocks_ != (n_terms_ + kTermBlock - 1) / kTermBlock) {
    return Status::ParseError("RDFA3: term block count mismatch");
  }
  term_offsets_ = r.Take(n_term_blocks_ * 8);
  if (term_offsets_ == nullptr) {
    return Status::ParseError("RDFA3: truncated term offset index");
  }
  const std::string_view blob = r.Rest();
  term_blob_ = blob.data();
  term_blob_len_ = blob.size();
  uint64_t prev = 0;
  for (uint64_t b = 0; b < n_term_blocks_; ++b) {
    const uint64_t off = LoadU64(term_offsets_ + b * 8);
    if (off < prev || off > term_blob_len_) {
      return Status::ParseError("RDFA3: term offset index not monotone");
    }
    prev = off;
  }
  return Status::OK();
}

Status MappedGraphView::InitPerm(int perm, std::string_view sec) {
  PermSection& ps = perms_[perm];
  SpanReader r(sec);
  uint32_t block = 0;
  if (!r.ReadU64(&ps.key_count) || !r.ReadU32(&block) ||
      !r.ReadU64(&ps.n_blocks)) {
    return Status::ParseError("RDFA3: truncated permutation header");
  }
  if (block != kPermBlock) {
    return Status::ParseError("RDFA3: unsupported permutation block size " +
                              std::to_string(block));
  }
  if (ps.n_blocks != (ps.key_count + kPermBlock - 1) / kPermBlock) {
    return Status::ParseError("RDFA3: permutation block count mismatch");
  }
  ps.index = r.Take(ps.n_blocks * 20);
  if (ps.index == nullptr) {
    return Status::ParseError("RDFA3: truncated permutation block index");
  }
  const std::string_view blob = r.Rest();
  ps.blob = blob.data();
  ps.blob_len = blob.size();
  uint64_t prev = 0;
  for (uint64_t b = 0; b < ps.n_blocks; ++b) {
    const uint64_t off = IndexOffset(ps, b);
    if (off < prev || off > ps.blob_len) {
      return Status::ParseError("RDFA3: permutation offsets not monotone");
    }
    prev = off;
  }
  return Status::OK();
}

Status MappedGraphView::InitStats(std::string_view sec) {
  SpanReader r(sec);
  uint64_t n_preds = 0;
  if (!r.ReadU64(&stats_.triples) || !r.ReadU64(&stats_.distinct_subjects) ||
      !r.ReadU64(&stats_.distinct_predicates) ||
      !r.ReadU64(&stats_.distinct_objects) || !r.ReadU64(&n_preds) ||
      n_preds > sec.size()) {
    return Status::ParseError("RDFA3: truncated stats block");
  }
  for (uint64_t i = 0; i < n_preds; ++i) {
    uint32_t pred = 0;
    PredicateStats entry;
    if (!r.ReadU32(&pred) || !r.ReadU64(&entry.triples) ||
        !r.ReadU64(&entry.distinct_subjects) ||
        !r.ReadU64(&entry.distinct_objects)) {
      return Status::ParseError("RDFA3: truncated predicate stats");
    }
    stats_.by_predicate[pred] = entry;
  }
  return Status::OK();
}

Status MappedGraphView::InitGenerations(std::string_view sec) {
  SpanReader r(sec);
  uint64_t n = 0;
  if (!r.ReadU64(&generation_) || !r.ReadU64(&n) || n > sec.size()) {
    return Status::ParseError("RDFA3: truncated generation block");
  }
  pred_gens_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t pred = 0;
    uint64_t gen = 0;
    if (!r.ReadU32(&pred) || !r.ReadU64(&gen)) {
      return Status::ParseError("RDFA3: truncated generation entry");
    }
    pred_gens_.emplace_back(pred, gen);
  }
  return Status::OK();
}

size_t MappedGraphView::DecodeTermBlock(size_t block, Term* out) const {
  if (block >= n_term_blocks_) return 0;
  term_blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  const size_t base = block * kTermBlock;
  const size_t count = std::min(kTermBlock, n_terms_ - base);
  const uint64_t off = LoadU64(term_offsets_ + block * 8);
  const uint64_t end = block + 1 < n_term_blocks_
                           ? LoadU64(term_offsets_ + (block + 1) * 8)
                           : term_blob_len_;
  SpanReader r(std::string_view(term_blob_ + off, end - off));
  std::string prev_lexical;
  for (size_t i = 0; i < count; ++i) {
    uint32_t kind32 = 0;
    uint64_t kind_and_shared[2] = {0, 0};
    {
      // u8 kind, then vbyte shared-prefix length.
      const char* kp = r.Take(1);
      if (kp == nullptr) return i;
      kind32 = static_cast<uint8_t>(*kp);
      if (!r.ReadVbyte(&kind_and_shared[1])) return i;
    }
    const uint64_t shared = kind_and_shared[1];
    if (shared > prev_lexical.size()) return i;
    std::string lexical = prev_lexical.substr(0, shared);
    std::string suffix;
    if (!r.ReadVbyteString(&suffix)) return i;
    lexical += suffix;
    uint64_t dt_idx = 0, lang_idx = 0;
    if (!r.ReadVbyte(&dt_idx) || !r.ReadVbyte(&lang_idx)) return i;
    if (dt_idx > datatypes_.size() || lang_idx > langs_.size()) return i;
    const std::string& dt = dt_idx == 0 ? kEmpty : datatypes_[dt_idx - 1];
    const std::string& lang = lang_idx == 0 ? kEmpty : langs_[lang_idx - 1];
    prev_lexical = lexical;
    out[i] = MakeTerm(static_cast<uint8_t>(kind32), std::move(lexical), dt,
                      lang);
  }
  return count;
}

Term MappedGraphView::DecodeTerm(TermId id) const {
  dict_lookups_.fetch_add(1, std::memory_order_relaxed);
  Term block[kTermBlock];
  const size_t b = id / kTermBlock;
  const size_t i = id % kTermBlock;
  const size_t count = DecodeTermBlock(b, block);
  if (i >= count) return Term();
  return std::move(block[i]);
}

void MappedGraphView::DecodeRange(TermId begin, TermId end, Term* out) const {
  // The lazy TermTable materializes whole chunks through here, so this is
  // the dictionary-lookup path that actually runs in production; count the
  // terms served, not the calls.
  if (end > begin) {
    dict_lookups_.fetch_add(end - begin, std::memory_order_relaxed);
  }
  Term block[kTermBlock];
  size_t written = 0;
  for (size_t b = begin / kTermBlock; b * kTermBlock < end; ++b) {
    const size_t count = DecodeTermBlock(b, block);
    for (size_t i = 0; i < count; ++i) {
      const size_t id = b * kTermBlock + i;
      if (id < begin || id >= end) continue;
      out[written++] = std::move(block[i]);
    }
    if (count < kTermBlock) break;
  }
}

MappedGraphView::PermKey MappedGraphView::IndexKey(const PermSection& ps,
                                                   size_t block) const {
  const char* e = ps.index + block * 20;
  return {LoadU32(e), LoadU32(e + 4), LoadU32(e + 8)};
}

uint64_t MappedGraphView::IndexOffset(const PermSection& ps,
                                      size_t block) const {
  return LoadU64(ps.index + block * 20 + 12);
}

size_t MappedGraphView::DecodeKeyBlock(int perm, size_t block,
                                       PermKey* out) const {
  const PermSection& ps = perms_[perm];
  if (block >= ps.n_blocks) return 0;
  key_blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  const size_t count =
      std::min(kPermBlock, static_cast<size_t>(ps.key_count) -
                               block * kPermBlock);
  PermKey prev = IndexKey(ps, block);
  out[0] = prev;
  const uint64_t off = IndexOffset(ps, block);
  const uint64_t end = block + 1 < ps.n_blocks ? IndexOffset(ps, block + 1)
                                               : ps.blob_len;
  VbyteDecoder dec(ps.blob + off, end - off);
  for (size_t i = 1; i < count; ++i) {
    uint64_t da = 0;
    if (!dec.Next(&da).ok()) return i;
    PermKey k;
    uint64_t v = 0;
    if (da != 0) {
      k.a = prev.a + static_cast<uint32_t>(da);
      if (!dec.Next(&v).ok()) return i;
      k.b = static_cast<uint32_t>(v);
      if (!dec.Next(&v).ok()) return i;
      k.c = static_cast<uint32_t>(v);
    } else {
      k.a = prev.a;
      uint64_t db = 0;
      if (!dec.Next(&db).ok()) return i;
      if (db != 0) {
        k.b = prev.b + static_cast<uint32_t>(db);
        if (!dec.Next(&v).ok()) return i;
        k.c = static_cast<uint32_t>(v);
      } else {
        k.b = prev.b;
        if (!dec.Next(&v).ok()) return i;
        k.c = prev.c + static_cast<uint32_t>(v);
      }
    }
    out[i] = k;
    prev = k;
  }
  return count;
}

size_t MappedGraphView::LowerBound(int perm, const PermKey& probe) const {
  const PermSection& ps = perms_[perm];
  if (ps.n_blocks == 0) return 0;
  // First block whose first key is >= probe.
  size_t lo = 0, hi = ps.n_blocks;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (IndexKey(ps, mid) < probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return 0;
  // The boundary lies inside the previous block (or just past its end).
  const size_t b = lo - 1;
  PermKey block[kPermBlock];
  const size_t count = DecodeKeyBlock(perm, b, block);
  const PermKey* pos = std::lower_bound(block, block + count, probe);
  return b * kPermBlock + static_cast<size_t>(pos - block);
}

size_t MappedGraphView::UpperBound(int perm, const PermKey& probe) const {
  const PermSection& ps = perms_[perm];
  if (ps.n_blocks == 0) return 0;
  // First block whose first key is > probe.
  size_t lo = 0, hi = ps.n_blocks;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (!(probe < IndexKey(ps, mid))) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return 0;
  const size_t b = lo - 1;
  PermKey block[kPermBlock];
  const size_t count = DecodeKeyBlock(perm, b, block);
  const PermKey* pos = std::upper_bound(block, block + count, probe);
  return b * kPermBlock + static_cast<size_t>(pos - block);
}

std::pair<size_t, size_t> MappedGraphView::Range(int perm,
                                                 PermKey probe) const {
  // Mirror Graph::Range: only the leading run of bound lanes narrows; the
  // first wildcard lane (and everything after it) spans the whole domain.
  PermKey lo_key, hi_key;
  uint32_t* lo_lanes[3] = {&lo_key.a, &lo_key.b, &lo_key.c};
  uint32_t* hi_lanes[3] = {&hi_key.a, &hi_key.b, &hi_key.c};
  const uint32_t lanes[3] = {probe.a, probe.b, probe.c};
  bool wildcard = false;
  for (int i = 0; i < 3; ++i) {
    if (wildcard || lanes[i] == kNoTermId) {
      wildcard = true;
      *lo_lanes[i] = 0;
      *hi_lanes[i] = kNoTermId;  // MAX; never a real id
    } else {
      *lo_lanes[i] = lanes[i];
      *hi_lanes[i] = lanes[i];
    }
  }
  return {LowerBound(perm, lo_key), UpperBound(perm, hi_key)};
}

}  // namespace rdfa::rdf
