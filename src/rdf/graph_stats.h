#ifndef RDFA_RDF_GRAPH_STATS_H_
#define RDFA_RDF_GRAPH_STATS_H_

#include <cstdint>
#include <unordered_map>

#include "rdf/term.h"

namespace rdfa::rdf {

/// Per-predicate cardinality statistics, computed once per index rebuild.
/// `triples` is the number of triples with this predicate; the distinct
/// counts are over that triple set, so avg_fanout_so() is the average number
/// of objects per subject (s -> o fanout) and avg_fanout_os() the average
/// number of subjects per object.
struct PredicateStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;

  double avg_fanout_so() const {
    return distinct_subjects == 0
               ? 0.0
               : static_cast<double>(triples) /
                     static_cast<double>(distinct_subjects);
  }
  double avg_fanout_os() const {
    return distinct_objects == 0
               ? 0.0
               : static_cast<double>(triples) /
                     static_cast<double>(distinct_objects);
  }
};

/// Graph-wide statistics block: global distinct counts plus one
/// PredicateStats entry per distinct predicate. The BGP reorderer uses these
/// for calibrated cardinality estimates instead of raw range widths.
struct GraphStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_predicates = 0;
  uint64_t distinct_objects = 0;
  std::unordered_map<TermId, PredicateStats> by_predicate;

  const PredicateStats* ForPredicate(TermId p) const {
    auto it = by_predicate.find(p);
    return it == by_predicate.end() ? nullptr : &it->second;
  }
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_GRAPH_STATS_H_
