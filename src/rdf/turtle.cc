#include "rdf/turtle.h"

#include <cctype>
#include <map>
#include <vector>

#include "common/string_util.h"

namespace rdfa::rdf {

namespace {

// Character-level scanner over the whole document.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpaceAndComments();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char Next() { return text_[pos_++]; }
  void Advance(size_t n) { pos_ += n; }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view text() const { return text_; }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpaceAndComments();
    if (text_.size() - pos_ < kw.size()) return false;
    if (!EqualsIgnoreCase(text_.substr(pos_, kw.size()), kw)) return false;
    size_t after = pos_ + kw.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class TurtleParser {
 public:
  TurtleParser(std::string_view text, Graph* graph, PrefixMap* prefixes)
      : scan_(text), graph_(graph), external_prefixes_(prefixes) {}

  Status Run() {
    while (!scan_.AtEnd()) {
      if (scan_.Peek() == '@') {
        RDFA_RETURN_NOT_OK(ParsePrefixDirective(/*at_style=*/true));
        continue;
      }
      if (scan_.ConsumeKeyword("PREFIX")) {
        RDFA_RETURN_NOT_OK(ParsePrefixDirective(/*at_style=*/false));
        continue;
      }
      if (scan_.ConsumeKeyword("BASE") || scan_.ConsumeKeyword("@base")) {
        return Err("@base is not supported");
      }
      RDFA_RETURN_NOT_OK(ParseTriplesBlock());
    }
    return Status::OK();
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError("turtle line " + std::to_string(scan_.line()) +
                              ": " + msg);
  }

  Status ParsePrefixDirective(bool at_style) {
    if (at_style) {
      // consume "@prefix"
      if (!scan_.ConsumeKeyword("@prefix")) return Err("expected @prefix");
    }
    // prefix name up to ':'
    scan_.SkipSpaceAndComments();
    std::string prefix;
    while (scan_.Peek() != ':' && !scan_.AtEnd()) {
      char c = scan_.Next();
      if (std::isspace(static_cast<unsigned char>(c))) break;
      prefix += c;
    }
    if (scan_.Peek() != ':') return Err("expected ':' in prefix directive");
    scan_.Next();
    scan_.SkipSpaceAndComments();
    if (scan_.Peek() != '<') return Err("expected <iri> in prefix directive");
    scan_.Next();
    std::string iri;
    // Raw character reads: '#' inside an IRI is not a comment.
    while (scan_.pos() < scan_.text().size() &&
           scan_.text()[scan_.pos()] != '>') {
      iri += scan_.Next();
    }
    if (scan_.pos() >= scan_.text().size()) {
      return Err("unterminated prefix IRI");
    }
    scan_.Next();  // '>'
    if (at_style) {
      scan_.SkipSpaceAndComments();
      if (scan_.Peek() == '.') scan_.Next();
    }
    prefixes_.Register(prefix, iri);
    if (external_prefixes_ != nullptr) {
      external_prefixes_->Register(prefix, iri);
    }
    return Status::OK();
  }

  Status ParseTriplesBlock() {
    RDFA_ASSIGN_OR_RETURN(Term subject, ParseTerm());
    while (true) {
      RDFA_ASSIGN_OR_RETURN(Term predicate, ParsePredicate());
      while (true) {
        RDFA_ASSIGN_OR_RETURN(Term object, ParseTerm());
        graph_->Add(subject, predicate, object);
        if (scan_.Peek() == ',') {
          scan_.Next();
          continue;
        }
        break;
      }
      char c = scan_.Peek();
      if (c == ';') {
        scan_.Next();
        // Allow trailing ';' before '.'.
        if (scan_.Peek() == '.') {
          scan_.Next();
          return Status::OK();
        }
        continue;
      }
      if (c == '.') {
        scan_.Next();
        return Status::OK();
      }
      return Err("expected ';' or '.' after object");
    }
  }

  Result<Term> ParsePredicate() {
    if (scan_.Peek() == 'a') {
      // Lookahead: 'a' followed by whitespace is rdf:type.
      size_t p = scan_.pos();
      if (p + 1 < scan_.text().size() &&
          std::isspace(static_cast<unsigned char>(scan_.text()[p + 1]))) {
        scan_.Next();
        return Term::Iri(rdfns::kType);
      }
    }
    return ParseTerm();
  }

  Result<Term> ParseTerm() {
    char c = scan_.Peek();
    if (c == '\0') return Err("unexpected end of input");
    if (c == '<') return ParseIriRef();
    if (c == '"') return ParseQuotedLiteral();
    if (c == '_' ) return ParseBlank();
    if (c == '(' || c == '[') {
      return Err("collections and blank node property lists are unsupported");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      return ParseNumber();
    }
    if (scan_.ConsumeKeyword("true")) return Term::Boolean(true);
    if (scan_.ConsumeKeyword("false")) return Term::Boolean(false);
    return ParsePrefixedName();
  }

  Result<Term> ParseIriRef() {
    scan_.Next();  // '<'
    std::string iri;
    while (scan_.pos() < scan_.text().size() &&
           scan_.text()[scan_.pos()] != '>') {
      iri += scan_.Next();
    }
    if (scan_.pos() >= scan_.text().size()) return Err("unterminated IRI");
    scan_.Next();
    return Term::Iri(std::move(iri));
  }

  Result<Term> ParseBlank() {
    scan_.Next();  // '_'
    if (scan_.pos() >= scan_.text().size() ||
        scan_.text()[scan_.pos()] != ':') {
      return Err("bad blank node");
    }
    scan_.Next();
    std::string label;
    while (scan_.pos() < scan_.text().size()) {
      char c = scan_.text()[scan_.pos()];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
        label += scan_.Next();
      } else {
        break;
      }
    }
    return Term::Blank(std::move(label));
  }

  Result<Term> ParseQuotedLiteral() {
    scan_.Next();  // '"'
    std::string raw;
    while (scan_.pos() < scan_.text().size()) {
      char c = scan_.text()[scan_.pos()];
      if (c == '\\') {
        raw += scan_.Next();
        if (scan_.pos() < scan_.text().size()) raw += scan_.Next();
        continue;
      }
      if (c == '"') break;
      if (c == '\n') return Err("multiline literals are unsupported");
      raw += scan_.Next();
    }
    if (scan_.pos() >= scan_.text().size()) return Err("unterminated literal");
    scan_.Next();  // closing '"'
    std::string lexical = UnescapeLiteral(raw);
    // Suffixes.
    if (scan_.pos() < scan_.text().size() &&
        scan_.text()[scan_.pos()] == '@') {
      scan_.Next();
      std::string lang;
      while (scan_.pos() < scan_.text().size()) {
        char c = scan_.text()[scan_.pos()];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '-') {
          lang += scan_.Next();
        } else {
          break;
        }
      }
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (scan_.pos() + 1 < scan_.text().size() &&
        scan_.text()[scan_.pos()] == '^' &&
        scan_.text()[scan_.pos() + 1] == '^') {
      scan_.Advance(2);
      RDFA_ASSIGN_OR_RETURN(Term dt, ParseTerm());
      if (!dt.is_iri()) return Err("datatype must be an IRI");
      return Term::TypedLiteral(std::move(lexical), dt.lexical());
    }
    return Term::Literal(std::move(lexical));
  }

  Result<Term> ParseNumber() {
    std::string num;
    bool has_dot = false;
    num += scan_.Next();
    while (scan_.pos() < scan_.text().size()) {
      char c = scan_.text()[scan_.pos()];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        num += scan_.Next();
      } else if (c == '.' && !has_dot) {
        // A '.' followed by a digit is a decimal point; otherwise it is the
        // statement terminator.
        if (scan_.pos() + 1 < scan_.text().size() &&
            std::isdigit(
                static_cast<unsigned char>(scan_.text()[scan_.pos() + 1]))) {
          has_dot = true;
          num += scan_.Next();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    if (has_dot) return Term::TypedLiteral(num, xsd::kDecimal);
    return Term::TypedLiteral(num, xsd::kInteger);
  }

  Result<Term> ParsePrefixedName() {
    std::string name;
    while (scan_.pos() < scan_.text().size()) {
      char c = scan_.text()[scan_.pos()];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':') {
        name += scan_.Next();
      } else if (c == '.') {
        // A '.' inside a local name only if followed by a name character;
        // otherwise it terminates the statement.
        if (scan_.pos() + 1 < scan_.text().size() &&
            (std::isalnum(static_cast<unsigned char>(
                 scan_.text()[scan_.pos() + 1])) ||
             scan_.text()[scan_.pos() + 1] == '_')) {
          name += scan_.Next();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    if (name.empty()) return Err("expected a term");
    auto iri = prefixes_.Expand(name);
    if (!iri.has_value()) {
      return Err("unknown prefix in '" + name + "'");
    }
    return Term::Iri(*iri);
  }

  Scanner scan_;
  Graph* graph_;
  PrefixMap prefixes_;
  PrefixMap* external_prefixes_;
};

}  // namespace

Status ParseTurtle(std::string_view text, Graph* graph, PrefixMap* prefixes) {
  TurtleParser parser(text, graph, prefixes);
  return parser.Run();
}

std::string WriteTurtle(const Graph& graph, const PrefixMap& prefixes) {
  std::string out;
  for (const auto& [prefix, base] : prefixes.prefixes()) {
    out += "@prefix " + prefix + ": <" + base + "> .\n";
  }
  out += "\n";
  // Group by subject, preserving first-appearance order.
  std::vector<TermId> order;
  std::map<TermId, std::vector<TripleId>> by_subject;
  for (const TripleId& t : graph.triples()) {
    auto [it, inserted] = by_subject.try_emplace(t.s);
    if (inserted) order.push_back(t.s);
    it->second.push_back(t);
  }
  const TermTable& terms = graph.terms();
  auto render = [&](TermId id) {
    const Term& t = terms.Get(id);
    if (t.is_iri()) return prefixes.ShrinkOrWrap(t.lexical());
    return t.ToNTriples();
  };
  for (TermId subj : order) {
    const auto& ts = by_subject[subj];
    out += render(subj);
    for (size_t i = 0; i < ts.size(); ++i) {
      out += (i == 0) ? " " : " ;\n    ";
      const Term& p = terms.Get(ts[i].p);
      if (p.is_iri() && p.lexical() == rdfns::kType) {
        out += "a";
      } else {
        out += render(ts[i].p);
      }
      out += " " + render(ts[i].o);
    }
    out += " .\n";
  }
  return out;
}

}  // namespace rdfa::rdf
