#ifndef RDFA_RDF_NTRIPLES_H_
#define RDFA_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::rdf {

/// Parses N-Triples text into `graph`. Lines that are empty or start with
/// '#' are skipped. Returns ParseError with a line number on bad input.
Status ParseNTriples(std::string_view text, Graph* graph);

/// Serializes the whole graph in N-Triples, one triple per line, in
/// insertion order.
std::string WriteNTriples(const Graph& graph);

/// Parses one N-Triples-syntax term ("<iri>", "_:b", "\"lit\"",
/// "\"lit\"@en", "\"5\"^^<dt>"). Inverse of Term::ToNTriples.
Result<Term> ParseNTriplesTerm(std::string_view text);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_NTRIPLES_H_
