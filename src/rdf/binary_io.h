#ifndef RDFA_RDF_BINARY_IO_H_
#define RDFA_RDF_BINARY_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::rdf {

/// Binary snapshot formats. Term ids are preserved exactly across a
/// save/load round trip in every version, which keeps saved
/// extensions/sessions valid.
///
/// RDFA1 ("RDFA1\n"): u64 term count, per term u8 kind + 3 length-prefixed
/// strings (lexical, datatype, lang); u64 triple count, per triple 3xu32.
///
/// RDFA2 ("RDFA2\n"): RDFA1 plus a trailing GraphStats block (4xu64 global
/// distincts, u64 predicate count, per predicate u32 id + 3xu64, ascending
/// id order).
///
/// RDFA3 ("RDFA3\n"): the compressed, mmap-able layout. After the magic, a
/// section table (u32 section count; per section u32 kind, u64 file offset,
/// u64 length) indexes six sections — unknown kinds are skippable:
///
///   1 TERMS        u64 term count, u32 block size (16), the datatype and
///                  language dictionaries (u64 count; per entry vbyte length
///                  + bytes, first-appearance-by-id order), u64 block count,
///                  per block a u64 offset into the blob, then the blob:
///                  per term u8 kind, vbyte shared-prefix length against the
///                  previous term's lexical (0 at each block start), vbyte
///                  suffix length + suffix bytes, vbyte datatype index and
///                  vbyte language index (0 = none, else dictionary index
///                  + 1). Front-coding restarts at every block, so one term
///                  decodes by scanning at most its 16-term block.
///
///   2/3/4 PERM_SPO/POS/OSP
///                  u64 key count, u32 block size (128), u64 block count,
///                  per block a 20-byte index entry (u32 a, u32 b, u32 c =
///                  the block's first key in permuted lane order, u64 blob
///                  offset), then the blob: keys [1..) of each block
///                  difference-coded against their predecessor — vbyte da;
///                  if da != 0 then vbyte b, vbyte c; else vbyte db; if
///                  db != 0 then vbyte c; else vbyte dc (keys are strictly
///                  increasing, so dc > 0). A bound-prefix range scan binary
///                  searches the block index and decodes only the blocks
///                  overlapping its range.
///
///   5 STATS        the RDFA2 stats block, verbatim layout.
///
///   6 GENERATIONS  u64 global mutation generation, u64 entry count, per
///                  entry u32 predicate id + u64 epoch (ascending id order)
///                  — the cache-invalidation stamps survive a round trip.
///
/// RDFA3 canonicalizes triple order to SPO: both the heap loader and the
/// mapped view enumerate the full graph in SPO order, so query results are
/// byte-identical regardless of backend. All fixed-width integers are
/// little-endian and unaligned.
inline constexpr int kSnapshotVersionV2 = 2;
inline constexpr int kSnapshotVersionV3 = 3;

/// Serializes `graph` as an RDFA2 or RDFA3 (default) snapshot.
std::string SaveBinary(const Graph& graph, int version = kSnapshotVersionV3);

/// Restores a snapshot (any version, auto-detected) into an *empty* graph,
/// fully decoded onto the heap. Term ids are preserved exactly as saved.
Status LoadBinary(std::string_view data, Graph* graph);

/// File convenience wrappers.
Status SaveBinaryFile(const Graph& graph, const std::string& path,
                      int version = kSnapshotVersionV3);
Status LoadBinaryFile(const std::string& path, Graph* graph);

/// Opens an RDFA3 snapshot as a mapped graph: the file is mmap-ed (or read
/// into memory where mmap is unavailable) and only the section structure is
/// parsed — terms and posting lists decode lazily per access, so this is
/// O(sections), not O(data). The graph answers every read path directly off
/// the snapshot and materializes to the heap on first mutation.
Result<std::unique_ptr<Graph>> OpenMappedSnapshot(const std::string& path);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_BINARY_IO_H_
