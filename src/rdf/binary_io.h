#ifndef RDFA_RDF_BINARY_IO_H_
#define RDFA_RDF_BINARY_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::rdf {

/// Compact binary snapshot of a graph: the interned term table followed by
/// the triple id list (so a reload preserves term ids, which keeps saved
/// extensions/sessions valid). Format:
///   magic "RDFA1\n", u64 term count, per term: u8 kind + 3 length-prefixed
///   strings (lexical, datatype, lang), u64 triple count, per triple 3xu32.
/// All integers little-endian.
std::string SaveBinary(const Graph& graph);

/// Restores a snapshot into an *empty* graph. Term ids are preserved
/// exactly as saved.
Status LoadBinary(std::string_view data, Graph* graph);

/// File convenience wrappers.
Status SaveBinaryFile(const Graph& graph, const std::string& path);
Status LoadBinaryFile(const std::string& path, Graph* graph);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_BINARY_IO_H_
