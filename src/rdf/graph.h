#ifndef RDFA_RDF_GRAPH_H_
#define RDFA_RDF_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "rdf/term_table.h"

namespace rdfa::rdf {

/// An in-memory RDF graph with set semantics over interned triples.
///
/// Three sorted permutation indexes (SPO, POS, OSP) are maintained lazily;
/// any triple pattern with 0-3 bound positions is answered by a binary-search
/// range scan over the best-fitting index. This is the storage substrate the
/// SPARQL engine, the RDFS reasoner and the faceted-search model all share.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  TermTable& terms() { return terms_; }
  const TermTable& terms() const { return terms_; }

  /// Adds a triple of terms (interning them); returns false if the triple
  /// was already present.
  bool Add(const Term& s, const Term& p, const Term& o);

  /// Adds a triple of already-interned ids; returns false on duplicates.
  bool AddIds(TripleId t);

  bool Contains(TermId s, TermId p, TermId o) const;

  /// Removes every triple matching the pattern (kNoTermId = wildcard) in
  /// one pass; returns how many were removed. Terms stay interned — ids
  /// remain valid.
  size_t RemoveMatching(TermId s, TermId p, TermId o);

  size_t size() const { return triples_.size(); }
  const std::vector<TripleId>& triples() const { return triples_; }

  /// Calls `fn(const TripleId&)` for every triple matching the pattern;
  /// kNoTermId positions are wildcards.
  template <typename Fn>
  void ForEachMatch(TermId s, TermId p, TermId o, Fn&& fn) const {
    EnsureIndexes();
    if (s == kNoTermId && p == kNoTermId && o == kNoTermId) {
      for (const TripleId& t : triples_) fn(t);
      return;
    }
    // Each index stores permuted keys; pick one whose first lane is bound.
    if (s != kNoTermId) {
      ScanIndex(spo_, {s, p, o}, kPermSPO, fn);
    } else if (p != kNoTermId) {
      ScanIndex(pos_, {p, o, s}, kPermPOS, fn);
    } else {
      ScanIndex(osp_, {o, s, p}, kPermOSP, fn);
    }
  }

  /// Collects matches into a vector.
  std::vector<TripleId> Match(TermId s, TermId p, TermId o) const;

  /// Number of matches (scans the narrowed range).
  size_t CountMatch(TermId s, TermId p, TermId o) const;

  /// Estimated result size used by the BGP join reorderer: the width of the
  /// narrowed index range, without filtering. Cheap upper bound on
  /// CountMatch.
  size_t EstimateMatch(TermId s, TermId p, TermId o) const;

 private:
  // A permuted triple used as an index entry; lexicographic order.
  struct Key {
    TermId a, b, c;
    friend bool operator<(const Key& x, const Key& y) {
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.c < y.c;
    }
  };

  enum Perm { kPermSPO, kPermPOS, kPermOSP };

  static TripleId Unpermute(const Key& k, Perm perm) {
    switch (perm) {
      case kPermSPO: return {k.a, k.b, k.c};
      case kPermPOS: return {k.c, k.a, k.b};
      case kPermOSP: return {k.b, k.c, k.a};
    }
    return {};
  }

  struct TripleHash {
    size_t operator()(const TripleId& t) const {
      uint64_t h = static_cast<uint64_t>(t.s) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(t.p) * 0xC2B2AE3D27D4EB4Full + (h << 6);
      h ^= static_cast<uint64_t>(t.o) * 0x165667B19E3779F9ull + (h >> 3);
      return static_cast<size_t>(h);
    }
  };

  // [lo, hi) range of entries in `index` whose bound prefix lanes match
  // `key`. Lanes with kNoTermId in `key` are wildcards; only the leading run
  // of bound lanes narrows the binary search.
  static std::pair<size_t, size_t> Range(const std::vector<Key>& index,
                                         const Key& key);

  template <typename Fn>
  void ScanIndex(const std::vector<Key>& index, Key key, Perm perm,
                 Fn&& fn) const {
    auto [lo, hi] = Range(index, key);
    for (size_t i = lo; i < hi; ++i) {
      const Key& k = index[i];
      if ((key.b == kNoTermId || k.b == key.b) &&
          (key.c == kNoTermId || k.c == key.c)) {
        fn(Unpermute(k, perm));
      }
    }
  }

  void EnsureIndexes() const;

  TermTable terms_;
  std::vector<TripleId> triples_;
  std::unordered_set<TripleId, TripleHash> triple_set_;

  mutable bool dirty_ = true;
  mutable std::vector<Key> spo_;
  mutable std::vector<Key> pos_;
  mutable std::vector<Key> osp_;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_GRAPH_H_
