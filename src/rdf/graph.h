#ifndef RDFA_RDF_GRAPH_H_
#define RDFA_RDF_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "rdf/term_table.h"

namespace rdfa::rdf {

/// An in-memory RDF graph with set semantics over interned triples.
///
/// Three sorted permutation indexes (SPO, POS, OSP) are maintained lazily;
/// any triple pattern with 0-3 bound positions is answered by a binary-search
/// range scan over the best-fitting index. This is the storage substrate the
/// SPARQL engine, the RDFS reasoner and the faceted-search model all share.
///
/// Thread-safety contract: all const read paths (ForEachMatch / Match /
/// CountMatch / EstimateMatch / Contains / Freeze) are safe to call from any
/// number of threads concurrently, including the first-touch lazy index
/// rebuild, which is serialized behind an internal mutex with a
/// generation-counted double-check. Mutation (Add / AddIds / RemoveMatching /
/// move construction) requires exclusive access: no reader may run
/// concurrently with a writer. The morsel-parallel executor relies on this —
/// it shares one const Graph across worker threads and never mutates it
/// mid-query.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    // Moving requires exclusive access to both graphs (see contract above),
    // so the index mutexes themselves need not — and cannot — be moved.
    if (this != &other) {
      terms_ = std::move(other.terms_);
      triples_ = std::move(other.triples_);
      triple_set_ = std::move(other.triple_set_);
      spo_ = std::move(other.spo_);
      pos_ = std::move(other.pos_);
      osp_ = std::move(other.osp_);
      index_generation_ = other.index_generation_;
      dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    return *this;
  }

  TermTable& terms() { return terms_; }
  const TermTable& terms() const { return terms_; }

  /// Adds a triple of terms (interning them); returns false if the triple
  /// was already present.
  bool Add(const Term& s, const Term& p, const Term& o);

  /// Adds a triple of already-interned ids; returns false on duplicates.
  bool AddIds(TripleId t);

  bool Contains(TermId s, TermId p, TermId o) const;

  /// Removes every triple matching the pattern (kNoTermId = wildcard) in
  /// one pass; returns how many were removed. Terms stay interned — ids
  /// remain valid.
  size_t RemoveMatching(TermId s, TermId p, TermId o);

  size_t size() const { return triples_.size(); }
  const std::vector<TripleId>& triples() const { return triples_; }

  /// Eagerly builds the permutation indexes if stale. Safe (and cheap when
  /// already built) from any thread; the executor calls it once per query so
  /// the first-touch rebuild cost is attributed to index_build time rather
  /// than to the first pattern scan.
  void Freeze() const { EnsureIndexes(); }

  /// Number of index rebuilds performed so far (observability / tests).
  uint64_t index_generation() const {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    return index_generation_;
  }

  /// Calls `fn(const TripleId&)` for every triple matching the pattern;
  /// kNoTermId positions are wildcards.
  template <typename Fn>
  void ForEachMatch(TermId s, TermId p, TermId o, Fn&& fn) const {
    EnsureIndexes();
    if (s == kNoTermId && p == kNoTermId && o == kNoTermId) {
      for (const TripleId& t : triples_) fn(t);
      return;
    }
    // Each index stores permuted keys; pick one whose first lane is bound.
    if (s != kNoTermId) {
      ScanIndex(spo_, {s, p, o}, kPermSPO, fn);
    } else if (p != kNoTermId) {
      ScanIndex(pos_, {p, o, s}, kPermPOS, fn);
    } else {
      ScanIndex(osp_, {o, s, p}, kPermOSP, fn);
    }
  }

  /// Collects matches into a vector.
  std::vector<TripleId> Match(TermId s, TermId p, TermId o) const;

  /// Number of matches (scans the narrowed range).
  size_t CountMatch(TermId s, TermId p, TermId o) const;

  /// Estimated result size used by the BGP join reorderer: the width of the
  /// narrowed index range, without filtering. Cheap upper bound on
  /// CountMatch.
  size_t EstimateMatch(TermId s, TermId p, TermId o) const;

 private:
  // A permuted triple used as an index entry; lexicographic order.
  struct Key {
    TermId a, b, c;
    friend bool operator<(const Key& x, const Key& y) {
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.c < y.c;
    }
  };

  enum Perm { kPermSPO, kPermPOS, kPermOSP };

  static TripleId Unpermute(const Key& k, Perm perm) {
    switch (perm) {
      case kPermSPO: return {k.a, k.b, k.c};
      case kPermPOS: return {k.c, k.a, k.b};
      case kPermOSP: return {k.b, k.c, k.a};
    }
    return {};
  }

  struct TripleHash {
    size_t operator()(const TripleId& t) const {
      uint64_t h = static_cast<uint64_t>(t.s) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(t.p) * 0xC2B2AE3D27D4EB4Full + (h << 6);
      h ^= static_cast<uint64_t>(t.o) * 0x165667B19E3779F9ull + (h >> 3);
      return static_cast<size_t>(h);
    }
  };

  // [lo, hi) range of entries in `index` whose bound prefix lanes match
  // `key`. Lanes with kNoTermId in `key` are wildcards; only the leading run
  // of bound lanes narrows the binary search.
  static std::pair<size_t, size_t> Range(const std::vector<Key>& index,
                                         const Key& key);

  template <typename Fn>
  void ScanIndex(const std::vector<Key>& index, Key key, Perm perm,
                 Fn&& fn) const {
    auto [lo, hi] = Range(index, key);
    for (size_t i = lo; i < hi; ++i) {
      const Key& k = index[i];
      if ((key.b == kNoTermId || k.b == key.b) &&
          (key.c == kNoTermId || k.c == key.c)) {
        fn(Unpermute(k, perm));
      }
    }
  }

  // Lazily (re)builds the three permutation indexes. Safe under concurrent
  // const readers: the dirty flag is an atomic fast path, the rebuild runs
  // exactly once behind `index_mu_` (double-checked), and the release store
  // of `dirty_` publishes the built indexes to later lock-free readers.
  void EnsureIndexes() const;

  TermTable terms_;
  std::vector<TripleId> triples_;
  std::unordered_set<TripleId, TripleHash> triple_set_;

  mutable std::atomic<bool> dirty_{true};
  mutable std::shared_mutex index_mu_;
  mutable uint64_t index_generation_ = 0;
  mutable std::vector<Key> spo_;
  mutable std::vector<Key> pos_;
  mutable std::vector<Key> osp_;
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_GRAPH_H_
