#ifndef RDFA_RDF_GRAPH_H_
#define RDFA_RDF_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/footprint.h"
#include "rdf/graph_stats.h"
#include "rdf/mapped_graph.h"
#include "rdf/term.h"
#include "rdf/term_table.h"

namespace rdfa::rdf {

/// An in-memory RDF graph with set semantics over interned triples.
///
/// Three sorted permutation indexes (SPO, POS, OSP) are maintained lazily;
/// any triple pattern with 0-3 bound positions is answered by a binary-search
/// range scan over the best-fitting index. This is the storage substrate the
/// SPARQL engine, the RDFS reasoner and the faceted-search model all share.
///
/// Storage backends: a Graph normally owns its triples on the heap, but
/// AttachMapped() lets an empty graph serve every read path straight off a
/// compressed RDFA3 snapshot (usually an mmap — see MappedGraphView) with no
/// up-front decode. Range semantics, estimates and enumeration order are
/// byte-identical across the two backends; the first mutation transparently
/// materializes the graph to the heap and detaches the view, so MVCC commits
/// (Clone + apply) work unchanged with a mapped epoch-0 base.
///
/// Thread-safety contract: all const read paths (ForEachMatch / Match /
/// CountMatch / EstimateMatch / Contains / Freeze) are safe to call from any
/// number of threads concurrently, including the first-touch lazy index
/// rebuild, which is serialized behind an internal mutex with a
/// generation-counted double-check. Mutation (Add / AddIds / RemoveMatching /
/// move construction) requires exclusive access: no reader may run
/// concurrently with a writer. The morsel-parallel executor relies on this —
/// it shares one const Graph across worker threads and never mutates it
/// mid-query.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    // Moving requires exclusive access to both graphs (see contract above),
    // so the index mutexes themselves need not — and cannot — be moved.
    if (this != &other) {
      terms_ = std::move(other.terms_);
      triples_ = std::move(other.triples_);
      triple_set_ = std::move(other.triple_set_);
      spo_ = std::move(other.spo_);
      pos_ = std::move(other.pos_);
      osp_ = std::move(other.osp_);
      pso_ = std::move(other.pso_);
      sop_ = std::move(other.sop_);
      ops_ = std::move(other.ops_);
      sec_dirty_.store(other.sec_dirty_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      index_generation_ = other.index_generation_;
      stats_ = std::move(other.stats_);
      // The destination graph's content changed wholesale: merge to a stamp
      // strictly past both counters so artifacts cached against either graph
      // go stale. Each counter is loaded exactly once into a local (the
      // exclusive-access contract makes the loads well-defined; a single
      // load per counter keeps the sum coherent even if that contract is
      // bent), and every per-predicate epoch is raised to the merged value:
      // a k-predicate footprint stamp becomes k * merged, strictly greater
      // than any stamp either graph could have produced for that footprint,
      // so a moved-into graph can never alias a live cache generation.
      const uint64_t mine = generation_.load(std::memory_order_acquire);
      const uint64_t theirs = other.generation_.load(std::memory_order_acquire);
      const uint64_t merged = mine + theirs + 1;
      generation_.store(merged, std::memory_order_release);
      pred_gens_ = std::move(other.pred_gens_);
      for (auto& entry : pred_gens_) entry.second = merged;
      dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      stats_dirty_.store(other.stats_dirty_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      view_ = std::move(other.view_);
      other.view_.reset();
      triples_ready_.store(
          other.triples_ready_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      other.triples_ready_.store(true, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Index permutations. The first three (SPO, POS, OSP) are the primaries:
  /// maintained lazily by EnsureIndexes, persisted in snapshots, and served
  /// straight off a mapped RDFA3 view. The last three (PSO, SOP, OPS) are
  /// secondaries: built in memory on first use so the planner can obtain any
  /// (bound-prefix, sort-lane) combination — every subset of {s, p, o}
  /// followed by any free lane is a complete prefix of one of the six. Each
  /// stores every triple re-ordered into the named lane order, sorted
  /// lexicographically, so any *prefix* of bound lanes narrows to a
  /// contiguous range by binary search.
  enum Perm { kPermSPO, kPermPOS, kPermOSP, kPermPSO, kPermSOP, kPermOPS };
  static constexpr int kNumPerms = 6;
  /// Lane order of each permutation: kPermLanes[perm][i] is the triple lane
  /// (0 = s, 1 = p, 2 = o) stored in key lane i.
  static constexpr int kPermLanes[kNumPerms][3] = {
      {0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {1, 0, 2}, {0, 2, 1}, {2, 1, 0}};

  /// Picks the permutation with the longest *bound prefix* for the given
  /// boundness pattern (e.g. s+o bound -> OSP, whose (o, s) prefix covers
  /// both, rather than SPO narrowed on s alone). Ties break SPO > POS > OSP
  /// for determinism, and only the three primaries are considered — this is
  /// the scan-order contract every pre-planner call site (and the hash
  /// join's byte-identity argument) relies on. Every subset of {s, p, o} is
  /// a complete prefix of one of the three permutations, so the chosen
  /// range contains exactly the matching triples whenever all bound lanes
  /// fall in the prefix.
  static Perm ChoosePerm(bool s_bound, bool p_bound, bool o_bound) {
    const int spo = s_bound ? (p_bound ? (o_bound ? 3 : 2) : 1) : 0;
    const int pos = p_bound ? (o_bound ? (s_bound ? 3 : 2) : 1) : 0;
    const int osp = o_bound ? (s_bound ? (p_bound ? 3 : 2) : 1) : 0;
    if (spo >= pos && spo >= osp) return kPermSPO;
    if (pos >= osp) return kPermPOS;
    return kPermOSP;
  }

  /// As above, but considers all six permutations and — among those with
  /// the longest bound prefix — prefers the one whose first *free* lane is
  /// `prefer_lane` (0 = s, 1 = p, 2 = o; -1 = no preference). The planner
  /// uses this to pick scan orders that feed downstream merge joins: ties
  /// the 3-arg overload resolves by enum order (forfeiting the interesting
  /// order) resolve here toward the requested sort lane. Primaries win
  /// remaining ties, then enum order, so with no (or an unsatisfiable)
  /// preference the choice degrades to the 3-arg overload's.
  static Perm ChoosePerm(bool s_bound, bool p_bound, bool o_bound,
                         int prefer_lane) {
    const bool bound[3] = {s_bound, p_bound, o_bound};
    int best = 0, best_prefix = -1, best_pref = -1;
    for (int perm = 0; perm < kNumPerms; ++perm) {
      int prefix = 0;
      while (prefix < 3 && bound[kPermLanes[perm][prefix]]) ++prefix;
      const int pref =
          prefix < 3 && kPermLanes[perm][prefix] == prefer_lane ? 1 : 0;
      if (prefix > best_prefix ||
          (prefix == best_prefix && pref > best_pref)) {
        best = perm;
        best_prefix = prefix;
        best_pref = pref;
      }
    }
    return static_cast<Perm>(best);
  }

  TermTable& terms() { return terms_; }
  const TermTable& terms() const { return terms_; }

  /// Adds a triple of terms (interning them); returns false if the triple
  /// was already present.
  bool Add(const Term& s, const Term& p, const Term& o);

  /// Adds a triple of already-interned ids; returns false on duplicates.
  bool AddIds(TripleId t);

  bool Contains(TermId s, TermId p, TermId o) const;

  /// Removes every triple matching the pattern (kNoTermId = wildcard) in
  /// one pass; returns how many were removed. Terms stay interned — ids
  /// remain valid.
  size_t RemoveMatching(TermId s, TermId p, TermId o);

  size_t size() const {
    return view_ != nullptr ? view_->triple_count() : triples_.size();
  }

  /// The triple list in enumeration order. On a mapped graph the list is
  /// materialized (in SPO order, matching a heap load of the same snapshot)
  /// on first call; pattern scans never need it.
  const std::vector<TripleId>& triples() const {
    if (view_ != nullptr && !triples_ready_.load(std::memory_order_acquire)) {
      MaterializeTriples();
    }
    return triples_;
  }

  /// Backs this (empty) graph with a parsed RDFA3 snapshot view: reads are
  /// answered from the compressed, lazily-decoded snapshot; stats and
  /// generation stamps are adopted from it. The first mutation materializes
  /// to the heap and detaches. Requires exclusive access.
  void AttachMapped(std::shared_ptr<const MappedGraphView> view);

  /// The attached snapshot view, or nullptr once detached / never attached.
  const MappedGraphView* mapped() const { return view_.get(); }

  /// Eagerly builds the permutation indexes if stale. Safe (and cheap when
  /// already built) from any thread; the executor calls it once per query so
  /// the first-touch rebuild cost is attributed to index_build time rather
  /// than to the first pattern scan.
  void Freeze() const { EnsureIndexes(); }

  /// Number of index rebuilds performed so far (observability / tests).
  uint64_t index_generation() const {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    return index_generation_;
  }

  /// Monotonic mutation counter: bumped every time the triple set actually
  /// changes (an insert that was not a duplicate, a removal that matched at
  /// least one triple). Cached artifacts — query answers, reordered plans,
  /// roll-ups — are stamped with the generation they were computed at and
  /// revalidated against this value, so a stale artifact can never be
  /// served after an update. Distinct from index_generation(), which counts
  /// index *rebuilds* (several mutations may share one rebuild).
  uint64_t Generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Per-predicate epoch: the value Generation() had just after the last
  /// effective mutation touching predicate `p` (0 = never mutated). Epochs
  /// are monotone per predicate and strictly bounded by Generation().
  uint64_t PredicateGeneration(TermId p) const {
    std::lock_guard<std::mutex> lock(pred_mu_);
    auto it = pred_gens_.find(p);
    return it == pred_gens_.end() ? 0 : it->second;
  }

  /// Combined validation stamp for a cached artifact's predicate footprint:
  /// the sum of the epochs of its named predicates (an absent predicate
  /// contributes 0 and stays 0 until something mutates it). A wildcard
  /// footprint falls back to the global Generation(). Each component is
  /// monotone, so the sum changes iff some footprint predicate mutated —
  /// updates touching *other* predicates leave the stamp (and thus every
  /// cache entry carrying this footprint) intact.
  uint64_t FootprintStamp(const CacheFootprint& fp) const;

  /// Deep copy: terms (ids preserved), triples, generation and predicate
  /// epochs. Indexes and stats are rebuilt lazily by the copy (Freeze() it
  /// before publishing to readers). Safe under concurrent const readers of
  /// *this*, including readers interning computed literals — this is how an
  /// MVCC commit forks the next version off a pinned snapshot.
  std::unique_ptr<Graph> Clone() const;

  /// Calls `fn(const TripleId&)` for every triple matching the pattern;
  /// kNoTermId positions are wildcards. Uses the longest-bound-prefix
  /// permutation, so the narrowed range contains exactly the matches.
  template <typename Fn>
  void ForEachMatch(TermId s, TermId p, TermId o, Fn&& fn) const {
    if (s == kNoTermId && p == kNoTermId && o == kNoTermId) {
      // A mapped graph enumerates its SPO permutation; a heap graph its
      // insertion order. Heap loads of RDFA3 snapshots insert in SPO order,
      // so the two backends agree byte-for-byte.
      if (view_ != nullptr) {
        view_->ForEachInPerm(kPermSPO, s, p, o, std::forward<Fn>(fn));
        return;
      }
      EnsureIndexes();
      for (const TripleId& t : triples_) fn(t);
      return;
    }
    ForEachInPerm(ChoosePerm(s != kNoTermId, p != kNoTermId, o != kNoTermId),
                  s, p, o, std::forward<Fn>(fn));
  }

  /// Like ForEachMatch but scans the *given* permutation, enumerating
  /// matches in that permutation's sort order. The order-preserving hash
  /// join relies on this: the build side must enumerate in exactly the order
  /// a per-row NLJ scan over the same permutation would.
  template <typename Fn>
  void ForEachInPerm(Perm perm, TermId s, TermId p, TermId o, Fn&& fn) const {
    if (view_ != nullptr && perm <= kPermOSP) {
      view_->ForEachInPerm(static_cast<int>(perm), s, p, o,
                           std::forward<Fn>(fn));
      return;
    }
    // Secondary permutations are not part of the snapshot format; a mapped
    // graph serves them from the in-memory secondaries, built off the
    // materialized triple list so enumeration order matches a heap load.
    if (perm >= kPermPSO) {
      EnsureSecondaryIndexes();
    } else {
      EnsureIndexes();
    }
    switch (perm) {
      case kPermSPO: ScanIndex(spo_, {s, p, o}, kPermSPO, fn); break;
      case kPermPOS: ScanIndex(pos_, {p, o, s}, kPermPOS, fn); break;
      case kPermOSP: ScanIndex(osp_, {o, s, p}, kPermOSP, fn); break;
      case kPermPSO: ScanIndex(pso_, {p, s, o}, kPermPSO, fn); break;
      case kPermSOP: ScanIndex(sop_, {s, o, p}, kPermSOP, fn); break;
      case kPermOPS: ScanIndex(ops_, {o, p, s}, kPermOPS, fn); break;
    }
  }

  /// Collects matches into a vector.
  std::vector<TripleId> Match(TermId s, TermId p, TermId o) const;

  /// Number of matches (scans the narrowed range).
  size_t CountMatch(TermId s, TermId p, TermId o) const;

  /// Estimated result size used by the BGP join reorderer: the width of the
  /// narrowed index range, without filtering. Cheap upper bound on
  /// CountMatch. With longest-bound-prefix selection every bound lane lands
  /// in the prefix, so this is exact for any constant-only pattern.
  size_t EstimateMatch(TermId s, TermId p, TermId o) const;

  /// Width of the range a ForEachInPerm scan over `perm` would narrow to:
  /// only the *leading* bound run of the permuted key binary-searches, later
  /// bound lanes are filtered inline. This is the number of index rows such
  /// a scan enumerates, which the adaptive join uses as its build cost.
  size_t EstimateInPerm(Perm perm, TermId s, TermId p, TermId o) const;

  /// Per-predicate and global cardinality statistics, computed during the
  /// same pass as the index rebuild (or restored from a snapshot). Valid
  /// until the next mutation; same thread-safety as the indexes.
  const GraphStats& Stats() const {
    EnsureIndexes();
    return stats_;
  }

  /// Installs precomputed statistics (e.g. from a binary snapshot) so the
  /// next EnsureIndexes skips the stats pass. Requires exclusive access,
  /// like any mutation.
  void RestoreStats(GraphStats stats) {
    stats_ = std::move(stats);
    stats_dirty_.store(false, std::memory_order_release);
  }

  /// Installs mutation-generation stamps from a snapshot, replacing the ones
  /// accumulated while loading. Keeps cache validation stamps stable across
  /// a save/load round trip. Requires exclusive access.
  void RestoreGenerations(
      uint64_t generation,
      const std::vector<std::pair<TermId, uint64_t>>& pred_gens) {
    generation_.store(generation, std::memory_order_release);
    std::lock_guard<std::mutex> lock(pred_mu_);
    pred_gens_.clear();
    pred_gens_.insert(pred_gens.begin(), pred_gens.end());
  }

  /// Snapshot of every per-predicate epoch (unordered); the snapshot writer
  /// sorts by predicate id for deterministic output.
  std::vector<std::pair<TermId, uint64_t>> PredicateGenerations() const {
    std::lock_guard<std::mutex> lock(pred_mu_);
    return {pred_gens_.begin(), pred_gens_.end()};
  }

  /// Streaming cursor over one narrowed permutation range, the scan half of
  /// the merge join. The constant lanes of the pattern must form a complete
  /// prefix of `perm`; the merge lane is the first free lane after them, so
  /// entries stream in ascending merge-key order. SeekGE is the sideways-
  /// information-passing hook: it binary-searches forward to the next
  /// candidate key, and on the mapped backend skips whole posting-list
  /// blocks without decoding them. decoded() counts entries actually
  /// materialized (the merge join's rows-scanned contribution); seeks()
  /// counts SeekGE calls separately — a seek is a binary search, not a row
  /// enumeration, so the two are never conflated in ExecStats.
  class MergeCursor;

  /// Opens a cursor over `perm` narrowed to the pattern's constant lanes
  /// (kNoTermId = free). Primaries are served off the mapped view when one
  /// is attached (lazy per-block decode); secondaries and heap graphs use
  /// the sorted in-memory index.
  MergeCursor OpenMergeCursor(Perm perm, TermId s, TermId p, TermId o) const;

 private:
  // A permuted triple used as an index entry; lexicographic order.
  struct Key {
    TermId a, b, c;
    friend bool operator<(const Key& x, const Key& y) {
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.c < y.c;
    }
  };

  static TripleId Unpermute(const Key& k, Perm perm) {
    switch (perm) {
      case kPermSPO: return {k.a, k.b, k.c};
      case kPermPOS: return {k.c, k.a, k.b};
      case kPermOSP: return {k.b, k.c, k.a};
      case kPermPSO: return {k.b, k.a, k.c};
      case kPermSOP: return {k.a, k.c, k.b};
      case kPermOPS: return {k.c, k.b, k.a};
    }
    return {};
  }

  static Key PermuteKey(Perm perm, TermId s, TermId p, TermId o) {
    const TermId lanes[3] = {s, p, o};
    return {lanes[kPermLanes[perm][0]], lanes[kPermLanes[perm][1]],
            lanes[kPermLanes[perm][2]]};
  }

  struct TripleHash {
    size_t operator()(const TripleId& t) const {
      uint64_t h = static_cast<uint64_t>(t.s) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(t.p) * 0xC2B2AE3D27D4EB4Full + (h << 6);
      h ^= static_cast<uint64_t>(t.o) * 0x165667B19E3779F9ull + (h >> 3);
      return static_cast<size_t>(h);
    }
  };

  // [lo, hi) range of entries in `index` whose bound prefix lanes match
  // `key`. Lanes with kNoTermId in `key` are wildcards; only the leading run
  // of bound lanes narrows the binary search.
  static std::pair<size_t, size_t> Range(const std::vector<Key>& index,
                                         const Key& key);

  template <typename Fn>
  void ScanIndex(const std::vector<Key>& index, Key key, Perm perm,
                 Fn&& fn) const {
    auto [lo, hi] = Range(index, key);
    for (size_t i = lo; i < hi; ++i) {
      const Key& k = index[i];
      if ((key.b == kNoTermId || k.b == key.b) &&
          (key.c == kNoTermId || k.c == key.c)) {
        fn(Unpermute(k, perm));
      }
    }
  }

  // Lazily (re)builds the three permutation indexes. Safe under concurrent
  // const readers: the dirty flag is an atomic fast path, the rebuild runs
  // exactly once behind `index_mu_` (double-checked), and the release store
  // of `dirty_` publishes the built indexes to later lock-free readers.
  void EnsureIndexes() const;

  // Lazily builds the three secondary permutations (PSO, SOP, OPS) from the
  // triple list. Not persisted in snapshots — the planner pays this build
  // on first use of a sort order the primaries cannot provide. Same
  // publication discipline as EnsureIndexes (atomic fast path + mutex
  // double-check), behind its own flag so primary-only workloads never pay.
  void EnsureSecondaryIndexes() const;

  // The sorted index vector for `perm`, built on demand. Callers on a
  // mapped graph should prefer the view for primaries; this is the heap /
  // secondary fallback the merge cursor uses.
  const std::vector<Key>& IndexFor(Perm perm) const;

  // Recomputes stats_ from the freshly sorted indexes. Caller must hold
  // index_mu_ exclusively with spo_/pos_/osp_ built.
  void ComputeStatsLocked() const;

  // Decodes the attached view's SPO permutation into triples_ (idempotent,
  // safe under concurrent readers). Mutable representation change only: the
  // observable triple list is unchanged.
  void MaterializeTriples() const;

  // Hydrates triples_ + triple_set_ from the attached view and detaches it,
  // turning this into a plain heap graph. No-op without a view. Requires
  // exclusive access; every mutating method calls it first.
  void MaterializeForWrite();

  TermTable terms_;
  // Mutable because a mapped graph materializes the list lazily on first
  // triples() access; see MaterializeTriples.
  mutable std::vector<TripleId> triples_;
  std::unordered_set<TripleId, TripleHash> triple_set_;

  // Bumped by every effective mutation; see Generation().
  std::atomic<uint64_t> generation_{0};
  // Per-predicate epochs; see PredicateGeneration(). The mutex makes stamp
  // reads cheap and safe even against a (contract-violating) concurrent
  // mutation; it is never held across user code.
  mutable std::mutex pred_mu_;
  std::unordered_map<TermId, uint64_t> pred_gens_;
  mutable std::atomic<bool> dirty_{true};
  // Set alongside dirty_ on mutation; cleared by the stats pass in
  // EnsureIndexes or by RestoreStats. Invariant: stats_dirty_ implies
  // dirty_, so a clean index always has clean stats.
  mutable std::atomic<bool> stats_dirty_{true};
  mutable std::shared_mutex index_mu_;
  mutable uint64_t index_generation_ = 0;
  mutable std::vector<Key> spo_;
  mutable std::vector<Key> pos_;
  mutable std::vector<Key> osp_;
  // Secondary permutations; see EnsureSecondaryIndexes.
  mutable std::atomic<bool> sec_dirty_{true};
  mutable std::shared_mutex sec_mu_;
  mutable std::vector<Key> pso_;
  mutable std::vector<Key> sop_;
  mutable std::vector<Key> ops_;
  mutable GraphStats stats_;

  // RDFA3 snapshot backend; null for a plain heap graph. Detached (under
  // the exclusive-access contract) by the first mutation.
  std::shared_ptr<const MappedGraphView> view_;
  mutable std::mutex materialize_mu_;
  mutable std::atomic<bool> triples_ready_{true};  ///< false once attached
};

class Graph::MergeCursor {
 public:
  MergeCursor() = default;

  bool at_end() const { return pos_ >= hi_; }
  /// Merge-lane value (the sort key) of the current entry.
  TermId key() const { return Lane(Entry(), merge_lane_); }
  /// The current entry as a triple.
  TripleId triple() const { return Graph::Unpermute(Entry(), perm_); }
  /// Advances one entry; the new entry (if any) counts as decoded.
  void Next() {
    ++pos_;
    if (pos_ < hi_) ++decoded_;
  }
  /// Jumps to the first entry at or past merge key `v` (keys must be sought
  /// in ascending order). Entries skipped over are never decoded — on the
  /// mapped backend only the per-block index is touched.
  void SeekGE(TermId v);

  /// Entries materialized so far (rows-scanned accounting).
  size_t decoded() const { return decoded_; }
  /// SeekGE calls so far (reported separately from decoded entries).
  size_t seeks() const { return seeks_; }

 private:
  friend class Graph;
  Key Entry() const;
  static TermId Lane(const Key& k, int lane) {
    return lane == 0 ? k.a : lane == 1 ? k.b : k.c;
  }

  Perm perm_ = kPermSPO;
  int merge_lane_ = 0;  ///< key lane holding the merge variable (0..2)
  Key prefix_{0, 0, 0};  ///< constant lanes; zero elsewhere (seek probes)
  const std::vector<Key>* index_ = nullptr;  ///< heap / secondary backend
  const MappedGraphView* view_ = nullptr;    ///< mapped primary backend
  size_t lo_ = 0, hi_ = 0, pos_ = 0;
  size_t decoded_ = 0, seeks_ = 0;
  // Mapped flavor: the one block the cursor position lies in, decoded
  // lazily (kPermBlock keys at a time, same as ForEachInPerm).
  mutable std::vector<MappedGraphView::PermKey> block_;
  mutable size_t block_id_ = static_cast<size_t>(-1);
};

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_GRAPH_H_
