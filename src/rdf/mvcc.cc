#include "rdf/mvcc.h"

#include <chrono>
#include <map>

#include "common/metrics.h"
#include "common/trace.h"

namespace rdfa::rdf {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Shared pin bookkeeping behind the snapshot-pin gauges. Owned jointly by
/// the MvccGraph and every outstanding Pin token, so a pin released after
/// the coordinator is destroyed still finds live state.
struct MvccGraph::PinTable {
  std::mutex mu;
  std::map<uint64_t, int> pins;  ///< epoch -> outstanding pin count
  uint64_t latest_epoch = 0;     ///< most recently published epoch

  /// Refreshes the gauges; call with `mu` held.
  void UpdateGaugesLocked() {
    MetricsRegistry& m = MetricsRegistry::Global();
    int total = 0;
    for (const auto& [epoch, n] : pins) total += n;
    m.GetGauge("rdfa_mvcc_snapshot_pins",
               "Outstanding MVCC snapshot pins across all epochs")
        .Set(total);
    const uint64_t min_pinned =
        pins.empty() ? latest_epoch : pins.begin()->first;
    m.GetGauge("rdfa_mvcc_min_pinned_epoch",
               "Oldest epoch still pinned by a reader")
        .Set(static_cast<double>(min_pinned));
    m.GetGauge("rdfa_mvcc_epoch_lag",
               "Epochs between the current version and the oldest pinned one")
        .Set(static_cast<double>(
            latest_epoch >= min_pinned ? latest_epoch - min_pinned : 0));
  }
};

MvccGraph::MvccGraph(std::unique_ptr<Graph> base)
    : MvccGraph(std::move(base), Options()) {}

MvccGraph::MvccGraph(std::unique_ptr<Graph> base, Options opts)
    : opts_(std::move(opts)),
      pin_table_(std::make_shared<PinTable>()),
      current_(base != nullptr ? std::shared_ptr<Graph>(std::move(base))
                               : std::make_shared<Graph>()) {
  current_->Freeze();
}

Result<std::unique_ptr<MvccGraph>> MvccGraph::Open(Options opts,
                                                   std::unique_ptr<Graph> base) {
  auto mvcc = std::unique_ptr<MvccGraph>(
      new MvccGraph(std::move(base), Options(opts)));
  if (opts.wal_path.empty()) return mvcc;
  TraceSpan replay_span(opts.tracer.get(), "wal-replay");
  RDFA_ASSIGN_OR_RETURN(WriteAheadLog::ReplayResult replayed,
                        WriteAheadLog::Replay(opts.wal_path));
  for (const WalRecord& rec : replayed.records) {
    // Same skip-on-failure policy as Commit: recovery must converge on the
    // graph the original writer produced.
    (void)mvcc->ApplyRecord(mvcc->current_.get(), rec);
  }
  mvcc->current_->Freeze();
  replay_span.Arg("records", static_cast<uint64_t>(replayed.records.size()));
  replay_span.Arg("truncated_bytes", replayed.truncated_bytes);
  mvcc->open_info_.replayed_records = replayed.records.size();
  mvcc->open_info_.truncated_bytes = replayed.truncated_bytes;
  RDFA_ASSIGN_OR_RETURN(mvcc->wal_, WriteAheadLog::Open(opts.wal_path,
                                                        opts.wal_sync_every));
  return mvcc;
}

MvccGraph::Pin MvccGraph::Snapshot() const {
  Pin pin;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    pin.graph = current_;
    pin.epoch = epoch_;
  }
  std::shared_ptr<PinTable> table = pin_table_;
  const uint64_t epoch = pin.epoch;
  {
    std::lock_guard<std::mutex> tlock(table->mu);
    ++table->pins[epoch];
    table->UpdateGaugesLocked();
  }
  // The token's deleter releases this pin; it captures the table by
  // shared_ptr, so release is safe even after the coordinator dies.
  pin.token = std::shared_ptr<void>(
      static_cast<void*>(nullptr), [table, epoch](void*) {
        std::lock_guard<std::mutex> tlock(table->mu);
        auto it = table->pins.find(epoch);
        if (it != table->pins.end() && --it->second <= 0) {
          table->pins.erase(it);
        }
        table->UpdateGaugesLocked();
      });
  return pin;
}

uint64_t MvccGraph::Epoch() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return epoch_;
}

void MvccGraph::Insert(const Term& s, const Term& p, const Term& o) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Insert(s, p, o));
}

void MvccGraph::Remove(const Term* s, const Term* p, const Term* o) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Remove(s != nullptr, s ? *s : Term(),
                                       p != nullptr, p ? *p : Term(),
                                       o != nullptr, o ? *o : Term()));
}

Status MvccGraph::BufferUpdate(std::string sparql_update) {
  if (!opts_.update_fn) {
    return Status::Unsupported(
        "mvcc: no update_fn configured for SPARQL updates");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Update(std::move(sparql_update)));
  return Status::OK();
}

size_t MvccGraph::pending_ops() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return pending_.size();
}

Status MvccGraph::ApplyRecord(Graph* g, const WalRecord& rec) const {
  switch (rec.op) {
    case WalRecord::Op::kInsert:
      g->Add(rec.s, rec.p, rec.o);
      return Status::OK();
    case WalRecord::Op::kRemove: {
      // Unresolvable bound lanes match nothing — the triple cannot exist.
      TermId s = kNoTermId, p = kNoTermId, o = kNoTermId;
      if (rec.has_s && (s = g->terms().Find(rec.s)) == kNoTermId) {
        return Status::OK();
      }
      if (rec.has_p && (p = g->terms().Find(rec.p)) == kNoTermId) {
        return Status::OK();
      }
      if (rec.has_o && (o = g->terms().Find(rec.o)) == kNoTermId) {
        return Status::OK();
      }
      g->RemoveMatching(rec.has_s ? s : kNoTermId, rec.has_p ? p : kNoTermId,
                        rec.has_o ? o : kNoTermId);
      return Status::OK();
    }
    case WalRecord::Op::kUpdate:
      if (!opts_.update_fn) {
        return Status::Unsupported("mvcc: no update_fn for replayed update");
      }
      return opts_.update_fn(g, rec.update);
  }
  return Status::Internal("mvcc: unknown WAL op");
}

Result<uint64_t> MvccGraph::Commit() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (pending_.empty()) return Epoch();
  Tracer* tracer = opts_.tracer.get();
  TraceSpan commit_span(tracer, "mvcc-commit");
  commit_span.Arg("ops", static_cast<uint64_t>(pending_.size()));
  // Durable before visible: the delta reaches stable storage before any
  // reader can observe the new version.
  if (wal_ != nullptr) {
    TraceSpan wal_span(tracer, "wal-append");
    for (const WalRecord& rec : pending_) {
      RDFA_RETURN_NOT_OK(wal_->Append(rec));
    }
    RDFA_RETURN_NOT_OK(wal_->Sync());
  }
  std::shared_ptr<Graph> base;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    base = current_;
  }
  const auto apply_start = std::chrono::steady_clock::now();
  std::unique_ptr<Graph> next;
  {
    TraceSpan apply_span(tracer, "commit-apply");
    next = base->Clone();
    for (const WalRecord& rec : pending_) {
      (void)ApplyRecord(next.get(), rec);  // skip-on-failure; see header
    }
    // Pre-freeze so no reader ever pays the index rebuild of a new epoch.
    next->Freeze();
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics
      .GetHistogram("rdfa_mvcc_commit_apply_ms", Histogram::LatencyBoundsMs(),
                    "Commit clone+apply+freeze latency")
      .Observe(MsSince(apply_start));
  pending_.clear();
  const auto publish_start = std::chrono::steady_clock::now();
  uint64_t published;
  {
    TraceSpan publish_span(tracer, "commit-publish");
    std::lock_guard<std::mutex> lock(snap_mu_);
    current_ = std::move(next);
    published = ++epoch_;
  }
  metrics
      .GetHistogram("rdfa_mvcc_commit_publish_ms",
                    Histogram::LatencyBoundsMs(),
                    "Commit version-swap latency (snapshot lock hold time)")
      .Observe(MsSince(publish_start));
  metrics
      .GetCounter("rdfa_mvcc_commits_total", "MVCC commits published")
      .Increment();
  metrics.GetGauge("rdfa_mvcc_epoch", "Current published MVCC epoch")
      .Set(static_cast<double>(published));
  {
    std::lock_guard<std::mutex> tlock(pin_table_->mu);
    pin_table_->latest_epoch = published;
    pin_table_->UpdateGaugesLocked();
  }
  commit_span.Arg("epoch", published);
  return published;
}

}  // namespace rdfa::rdf
