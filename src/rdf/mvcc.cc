#include "rdf/mvcc.h"

namespace rdfa::rdf {

MvccGraph::MvccGraph(std::unique_ptr<Graph> base)
    : MvccGraph(std::move(base), Options()) {}

MvccGraph::MvccGraph(std::unique_ptr<Graph> base, Options opts)
    : opts_(std::move(opts)),
      current_(base != nullptr ? std::shared_ptr<Graph>(std::move(base))
                               : std::make_shared<Graph>()) {
  current_->Freeze();
}

Result<std::unique_ptr<MvccGraph>> MvccGraph::Open(Options opts,
                                                   std::unique_ptr<Graph> base) {
  auto mvcc = std::unique_ptr<MvccGraph>(
      new MvccGraph(std::move(base), Options(opts)));
  if (opts.wal_path.empty()) return mvcc;
  RDFA_ASSIGN_OR_RETURN(WriteAheadLog::ReplayResult replayed,
                        WriteAheadLog::Replay(opts.wal_path));
  for (const WalRecord& rec : replayed.records) {
    // Same skip-on-failure policy as Commit: recovery must converge on the
    // graph the original writer produced.
    (void)mvcc->ApplyRecord(mvcc->current_.get(), rec);
  }
  mvcc->current_->Freeze();
  mvcc->open_info_.replayed_records = replayed.records.size();
  mvcc->open_info_.truncated_bytes = replayed.truncated_bytes;
  RDFA_ASSIGN_OR_RETURN(mvcc->wal_, WriteAheadLog::Open(opts.wal_path,
                                                        opts.wal_sync_every));
  return mvcc;
}

MvccGraph::Pin MvccGraph::Snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return Pin{current_, epoch_};
}

uint64_t MvccGraph::Epoch() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return epoch_;
}

void MvccGraph::Insert(const Term& s, const Term& p, const Term& o) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Insert(s, p, o));
}

void MvccGraph::Remove(const Term* s, const Term* p, const Term* o) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Remove(s != nullptr, s ? *s : Term(),
                                       p != nullptr, p ? *p : Term(),
                                       o != nullptr, o ? *o : Term()));
}

Status MvccGraph::BufferUpdate(std::string sparql_update) {
  if (!opts_.update_fn) {
    return Status::Unsupported(
        "mvcc: no update_fn configured for SPARQL updates");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  pending_.push_back(WalRecord::Update(std::move(sparql_update)));
  return Status::OK();
}

size_t MvccGraph::pending_ops() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return pending_.size();
}

Status MvccGraph::ApplyRecord(Graph* g, const WalRecord& rec) const {
  switch (rec.op) {
    case WalRecord::Op::kInsert:
      g->Add(rec.s, rec.p, rec.o);
      return Status::OK();
    case WalRecord::Op::kRemove: {
      // Unresolvable bound lanes match nothing — the triple cannot exist.
      TermId s = kNoTermId, p = kNoTermId, o = kNoTermId;
      if (rec.has_s && (s = g->terms().Find(rec.s)) == kNoTermId) {
        return Status::OK();
      }
      if (rec.has_p && (p = g->terms().Find(rec.p)) == kNoTermId) {
        return Status::OK();
      }
      if (rec.has_o && (o = g->terms().Find(rec.o)) == kNoTermId) {
        return Status::OK();
      }
      g->RemoveMatching(rec.has_s ? s : kNoTermId, rec.has_p ? p : kNoTermId,
                        rec.has_o ? o : kNoTermId);
      return Status::OK();
    }
    case WalRecord::Op::kUpdate:
      if (!opts_.update_fn) {
        return Status::Unsupported("mvcc: no update_fn for replayed update");
      }
      return opts_.update_fn(g, rec.update);
  }
  return Status::Internal("mvcc: unknown WAL op");
}

Result<uint64_t> MvccGraph::Commit() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  if (pending_.empty()) return Epoch();
  // Durable before visible: the delta reaches stable storage before any
  // reader can observe the new version.
  if (wal_ != nullptr) {
    for (const WalRecord& rec : pending_) {
      RDFA_RETURN_NOT_OK(wal_->Append(rec));
    }
    RDFA_RETURN_NOT_OK(wal_->Sync());
  }
  std::shared_ptr<Graph> base;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    base = current_;
  }
  std::unique_ptr<Graph> next = base->Clone();
  for (const WalRecord& rec : pending_) {
    (void)ApplyRecord(next.get(), rec);  // skip-on-failure; see header
  }
  // Pre-freeze so no reader ever pays the index rebuild of a new epoch.
  next->Freeze();
  pending_.clear();
  std::lock_guard<std::mutex> lock(snap_mu_);
  current_ = std::move(next);
  return ++epoch_;
}

}  // namespace rdfa::rdf
