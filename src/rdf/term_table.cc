#include "rdf/term_table.h"

#include <mutex>

namespace rdfa::rdf {

TermTable& TermTable::operator=(TermTable&& other) noexcept {
  if (this != &other) {
    DestroyChunks();
    for (size_t c = 0; c < kNumChunks; ++c) {
      chunks_[c].store(other.chunks_[c].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other.chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
    index_ = std::move(other.index_);
    other.index_.clear();
    blank_counter_ = other.blank_counter_;
  }
  return *this;
}

TermTable::~TermTable() { DestroyChunks(); }

void TermTable::DestroyChunks() {
  for (auto& slot : chunks_) {
    delete[] slot.load(std::memory_order_relaxed);
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

TermId TermTable::AppendLocked(const Term& term) {
  const size_t id = size_.load(std::memory_order_relaxed);
  const size_t c = ChunkOf(static_cast<TermId>(id));
  Term* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Term[ChunkSize(c)];
    // Release so a lock-free Get that learned the id through any
    // synchronizing channel also sees the chunk pointer.
    chunks_[c].store(chunk, std::memory_order_release);
  }
  chunk[id - ChunkBase(c)] = term;
  index_.emplace(term, static_cast<TermId>(id));
  // The slot is fully written before the id becomes visible via size().
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

TermId TermTable::Intern(const Term& term) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);  // re-check: another thread may have won
  if (it != index_.end()) return it->second;
  return AppendLocked(term);
}

TermId TermTable::Find(const Term& term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);
  return it == index_.end() ? kNoTermId : it->second;
}

TermId TermTable::InternIri(std::string_view iri) {
  return Intern(Term::Iri(std::string(iri)));
}

TermId TermTable::FindIri(std::string_view iri) const {
  return Find(Term::Iri(std::string(iri)));
}

TermId TermTable::MintBlank() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  while (true) {
    std::string label = "b" + std::to_string(blank_counter_++);
    Term t = Term::Blank(label);
    if (index_.find(t) == index_.end()) return AppendLocked(t);
  }
}

void TermTable::CopyFrom(const TermTable& other) {
  std::unique_lock<std::shared_mutex> my_lock(mu_);
  std::shared_lock<std::shared_mutex> their_lock(other.mu_);
  DestroyChunks();
  index_.clear();
  const size_t n = other.size_.load(std::memory_order_acquire);
  for (size_t id = 0; id < n; ++id) {
    const size_t c = ChunkOf(static_cast<TermId>(id));
    Term* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Term[ChunkSize(c)];
      chunks_[c].store(chunk, std::memory_order_release);
    }
    chunk[id - ChunkBase(c)] = other.Get(static_cast<TermId>(id));
  }
  index_ = other.index_;
  blank_counter_ = other.blank_counter_;
  size_.store(n, std::memory_order_release);
}

}  // namespace rdfa::rdf
