#include "rdf/term_table.h"

#include <algorithm>
#include <mutex>

namespace rdfa::rdf {

TermTable& TermTable::operator=(TermTable&& other) noexcept {
  if (this != &other) {
    DestroyChunks();
    for (size_t c = 0; c < kNumChunks; ++c) {
      chunks_[c].store(other.chunks_[c].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other.chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
    index_ = std::move(other.index_);
    other.index_.clear();
    blank_counter_ = other.blank_counter_;
    dict_ = std::move(other.dict_);
    other.dict_.reset();
    index_hydrated_.store(
        other.index_hydrated_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.index_hydrated_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

TermTable::~TermTable() { DestroyChunks(); }

void TermTable::DestroyChunks() {
  for (auto& slot : chunks_) {
    delete[] slot.load(std::memory_order_relaxed);
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

void TermTable::AttachDict(std::shared_ptr<const TermDictSource> dict) {
  // Precondition (same as LoadBinary): the table is empty. The dictionary
  // becomes the authoritative source for ids [0, dict->term_count()).
  dict_ = std::move(dict);
  index_hydrated_.store(false, std::memory_order_release);
  size_.store(dict_->term_count(), std::memory_order_release);
}

Term* TermTable::MaterializeChunkLocked(size_t c) const {
  Term* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk != nullptr) return chunk;
  chunk = new Term[ChunkSize(c)];
  if (dict_ != nullptr) {
    const size_t base = ChunkBase(c);
    const size_t end = std::min(base + ChunkSize(c), dict_->term_count());
    if (base < end) {
      dict_->DecodeRange(static_cast<TermId>(base), static_cast<TermId>(end),
                         chunk);
    }
  }
  // Release so lock-free Get readers that see the pointer also see the
  // decoded slots.
  chunks_[c].store(chunk, std::memory_order_release);
  return chunk;
}

const Term* TermTable::MaterializeChunk(size_t c) const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return MaterializeChunkLocked(c);
}

void TermTable::HydrateIndex() const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (index_hydrated_.load(std::memory_order_relaxed)) return;
  const size_t n = dict_->term_count();
  for (size_t id = 0; id < n; ++id) {
    const size_t c = ChunkOf(static_cast<TermId>(id));
    const Term* chunk = MaterializeChunkLocked(c);
    index_.emplace(chunk[id - ChunkBase(c)], static_cast<TermId>(id));
  }
  index_hydrated_.store(true, std::memory_order_release);
}

TermId TermTable::AppendLocked(const Term& term) {
  const size_t id = size_.load(std::memory_order_relaxed);
  const size_t c = ChunkOf(static_cast<TermId>(id));
  Term* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    // With a dictionary attached the index hydration pass has already
    // materialized every dict-covered chunk, so a fresh chunk here only
    // ever holds appended terms.
    chunk = new Term[ChunkSize(c)];
    // Release so a lock-free Get that learned the id through any
    // synchronizing channel also sees the chunk pointer.
    chunks_[c].store(chunk, std::memory_order_release);
  }
  chunk[id - ChunkBase(c)] = term;
  index_.emplace(term, static_cast<TermId>(id));
  // The slot is fully written before the id becomes visible via size().
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

TermId TermTable::Intern(const Term& term) {
  if (!index_hydrated_.load(std::memory_order_acquire)) HydrateIndex();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);  // re-check: another thread may have won
  if (it != index_.end()) return it->second;
  return AppendLocked(term);
}

TermId TermTable::Find(const Term& term) const {
  if (!index_hydrated_.load(std::memory_order_acquire)) HydrateIndex();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);
  return it == index_.end() ? kNoTermId : it->second;
}

TermId TermTable::InternIri(std::string_view iri) {
  return Intern(Term::Iri(std::string(iri)));
}

TermId TermTable::FindIri(std::string_view iri) const {
  return Find(Term::Iri(std::string(iri)));
}

TermId TermTable::MintBlank() {
  if (!index_hydrated_.load(std::memory_order_acquire)) HydrateIndex();
  std::unique_lock<std::shared_mutex> lock(mu_);
  while (true) {
    std::string label = "b" + std::to_string(blank_counter_++);
    Term t = Term::Blank(label);
    if (index_.find(t) == index_.end()) return AppendLocked(t);
  }
}

void TermTable::CopyFrom(const TermTable& other) {
  // Hydrate the source first (outside the lock ordering below): the copy is
  // a plain heap table, so every source term must be materialized.
  if (!other.index_hydrated_.load(std::memory_order_acquire)) {
    other.HydrateIndex();
  }
  std::unique_lock<std::shared_mutex> my_lock(mu_);
  std::shared_lock<std::shared_mutex> their_lock(other.mu_);
  DestroyChunks();
  index_.clear();
  dict_.reset();
  index_hydrated_.store(true, std::memory_order_relaxed);
  const size_t n = other.size_.load(std::memory_order_acquire);
  for (size_t id = 0; id < n; ++id) {
    const size_t c = ChunkOf(static_cast<TermId>(id));
    Term* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Term[ChunkSize(c)];
      chunks_[c].store(chunk, std::memory_order_release);
    }
    chunk[id - ChunkBase(c)] = other.Get(static_cast<TermId>(id));
  }
  index_ = other.index_;
  blank_counter_ = other.blank_counter_;
  size_.store(n, std::memory_order_release);
}

}  // namespace rdfa::rdf
