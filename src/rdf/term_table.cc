#include "rdf/term_table.h"

namespace rdfa::rdf {

TermId TermTable::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

TermId TermTable::Find(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kNoTermId : it->second;
}

TermId TermTable::InternIri(std::string_view iri) {
  return Intern(Term::Iri(std::string(iri)));
}

TermId TermTable::FindIri(std::string_view iri) const {
  return Find(Term::Iri(std::string(iri)));
}

TermId TermTable::MintBlank() {
  while (true) {
    std::string label = "b" + std::to_string(blank_counter_++);
    Term t = Term::Blank(label);
    if (index_.find(t) == index_.end()) return Intern(t);
  }
}

}  // namespace rdfa::rdf
