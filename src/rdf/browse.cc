#include "rdf/browse.h"

#include <map>
#include <set>

#include "rdf/namespaces.h"

namespace rdfa::rdf {

namespace {

std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}

std::vector<PropertyGroup> GroupByProperty(
    const std::map<TermId, std::set<TermId>>& index) {
  std::vector<PropertyGroup> out;
  out.reserve(index.size());
  for (const auto& [p, values] : index) {
    PropertyGroup group;
    group.property = p;
    group.values.assign(values.begin(), values.end());
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace

ResourceCard DescribeResource(const Graph& graph, TermId resource) {
  ResourceCard card;
  card.subject = resource;
  TermId type = graph.terms().FindIri(rdfns::kType);

  std::map<TermId, std::set<TermId>> outgoing;
  graph.ForEachMatch(resource, kNoTermId, kNoTermId,
                     [&](const TripleId& t) {
                       if (t.p == type) {
                         card.types.push_back(t.o);
                       } else {
                         outgoing[t.p].insert(t.o);
                       }
                     });
  std::map<TermId, std::set<TermId>> incoming;
  graph.ForEachMatch(kNoTermId, kNoTermId, resource,
                     [&](const TripleId& t) {
                       if (t.p != type) incoming[t.p].insert(t.s);
                     });
  card.outgoing = GroupByProperty(outgoing);
  card.incoming = GroupByProperty(incoming);
  return card;
}

size_t ConciseBoundedDescription(const Graph& graph, TermId resource,
                                 Graph* out) {
  size_t added = 0;
  std::set<TermId> visited;
  std::vector<TermId> work = {resource};
  while (!work.empty()) {
    TermId cur = work.back();
    work.pop_back();
    if (!visited.insert(cur).second) continue;
    graph.ForEachMatch(cur, kNoTermId, kNoTermId, [&](const TripleId& t) {
      if (out->Add(graph.terms().Get(t.s), graph.terms().Get(t.p),
                   graph.terms().Get(t.o))) {
        ++added;
      }
      // Recurse through blank node values (the CBD rule).
      if (graph.terms().Get(t.o).is_blank()) work.push_back(t.o);
    });
  }
  return added;
}

std::string RenderResourceCard(const Graph& graph, const ResourceCard& card,
                               size_t max_values_per_property) {
  const TermTable& terms = graph.terms();
  auto show = [&](TermId id) {
    const Term& t = terms.Get(id);
    if (t.is_literal()) return t.lexical();
    if (t.is_blank()) return "_:" + t.lexical();
    return LocalName(t.lexical());
  };
  std::string out = "== " + show(card.subject);
  if (!card.types.empty()) {
    out += " (";
    for (size_t i = 0; i < card.types.size(); ++i) {
      if (i > 0) out += ", ";
      out += show(card.types[i]);
    }
    out += ")";
  }
  out += " ==\n";
  auto render_groups = [&](const std::vector<PropertyGroup>& groups,
                           const char* arrow) {
    for (const PropertyGroup& g : groups) {
      out += std::string(arrow) + " " + show(g.property) + ": ";
      for (size_t i = 0; i < g.values.size(); ++i) {
        if (i >= max_values_per_property) {
          out += ", ...";
          break;
        }
        if (i > 0) out += ", ";
        out += show(g.values[i]);
      }
      out += "\n";
    }
  };
  render_groups(card.outgoing, "->");
  render_groups(card.incoming, "<-");
  return out;
}

}  // namespace rdfa::rdf
