#ifndef RDFA_RDF_RDFS_H_
#define RDFA_RDF_RDFS_H_

#include <map>
#include <set>
#include <vector>

#include "rdf/graph.h"

namespace rdfa::rdf {

/// Interned ids of the RDF/RDFS vocabulary terms inside one graph.
/// Missing terms are interned on construction so ids are always valid.
struct Vocab {
  explicit Vocab(Graph* graph);

  TermId type;
  TermId rdfs_class;
  TermId rdf_property;
  TermId sub_class_of;
  TermId sub_property_of;
  TermId domain;
  TermId range;
  TermId label;
};

/// A read-only schema view over a graph: which terms are classes /
/// properties, the subclass & subproperty orders, domains and ranges.
///
/// The view is computed once from the current graph contents; rebuild after
/// mutating the graph. The subclass/subproperty maps hold *direct* edges; the
/// transitive queries walk them on demand (schemas are small relative to
/// data, per the paper's assumption).
class SchemaView {
 public:
  explicit SchemaView(const Graph& graph, const Vocab& vocab);

  const std::set<TermId>& classes() const { return classes_; }
  const std::set<TermId>& properties() const { return properties_; }

  /// Direct super/subclasses (empty set if unknown class).
  std::set<TermId> DirectSuperclasses(TermId c) const;
  std::set<TermId> DirectSubclasses(TermId c) const;
  /// Reflexive-transitive closure upward / downward.
  std::set<TermId> Superclasses(TermId c) const;
  std::set<TermId> Subclasses(TermId c) const;
  /// Classes with no superclass — the top-level facet roots (paper §5.3.2,
  /// maximal_{<=cl}(C)).
  std::vector<TermId> MaximalClasses() const;

  std::set<TermId> DirectSuperproperties(TermId p) const;
  std::set<TermId> DirectSubproperties(TermId p) const;
  std::set<TermId> Superproperties(TermId p) const;
  std::set<TermId> Subproperties(TermId p) const;
  /// Properties with no superproperty (maximal_{<=pr}(Pr)).
  std::vector<TermId> MaximalProperties() const;

  /// Declared domain/range classes of `p` (may be empty).
  std::set<TermId> Domains(TermId p) const;
  std::set<TermId> Ranges(TermId p) const;

 private:
  static std::set<TermId> Closure(
      const std::map<TermId, std::set<TermId>>& edges, TermId start);

  std::set<TermId> classes_;
  std::set<TermId> properties_;
  std::map<TermId, std::set<TermId>> super_class_;   // c -> direct supers
  std::map<TermId, std::set<TermId>> sub_class_;     // c -> direct subs
  std::map<TermId, std::set<TermId>> super_prop_;
  std::map<TermId, std::set<TermId>> sub_prop_;
  std::map<TermId, std::set<TermId>> domain_;
  std::map<TermId, std::set<TermId>> range_;
};

/// Forward-chains the RDFS entailment rules the paper relies on
/// (dissertation §2.1, §4.1):
///   rdfs9/rdfs11: type propagation through transitive subClassOf
///   rdfs5/rdfs7:  property-instance propagation through subPropertyOf
///   rdfs2/rdfs3:  domain / range typing
/// Returns the number of triples added. Single pass in dependency order
/// (subproperty -> domain/range -> subclass), which reaches the fixpoint for
/// these rules.
size_t MaterializeRdfsClosure(Graph* graph);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_RDFS_H_
