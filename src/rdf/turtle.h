#ifndef RDFA_RDF_TURTLE_H_
#define RDFA_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/namespaces.h"

namespace rdfa::rdf {

/// Parses a practical Turtle subset into `graph`:
///   - `@prefix p: <iri> .` and SPARQL-style `PREFIX p: <iri>`
///   - prefixed names, full IRIs, blank node labels (`_:x`)
///   - the keyword `a` for rdf:type
///   - predicate lists (`;`) and object lists (`,`)
///   - literals with escapes, `@lang`, `^^datatype`, and the numeric /
///     boolean abbreviations (42, 3.14, true, false)
/// Unsupported (returns ParseError): collections `( )`, anonymous blank
/// node property lists `[ ]`, multiline literals.
///
/// Prefixes discovered while parsing are registered into `*prefixes` when it
/// is non-null, so callers can reuse them for pretty printing.
Status ParseTurtle(std::string_view text, Graph* graph,
                   PrefixMap* prefixes = nullptr);

/// Serializes the graph in Turtle using `prefixes` for compaction, grouping
/// triples by subject.
std::string WriteTurtle(const Graph& graph, const PrefixMap& prefixes);

}  // namespace rdfa::rdf

#endif  // RDFA_RDF_TURTLE_H_
