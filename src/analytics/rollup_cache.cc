#include "analytics/rollup_cache.h"

#include <map>

#include "sparql/value.h"

namespace rdfa::analytics {

using hifun::AggOp;
using rdf::Term;
using sparql::Value;

namespace {

Result<std::vector<int>> ResolveColumns(
    const sparql::ResultTable& table, const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    int idx = table.ColumnIndex(name);
    if (idx < 0) return Status::NotFound("no column " + name);
    out.push_back(idx);
  }
  return out;
}

std::string GroupKey(const sparql::ResultTable& table, size_t row,
                     const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) key += table.at(row, c).ToNTriples() + "\t";
  return key;
}

}  // namespace

Result<AnswerFrame> RollUpAnswer(const AnswerFrame& answer,
                                 const std::vector<std::string>& keep_columns,
                                 const std::string& agg_column,
                                 AggOp op) {
  if (op == AggOp::kAvg) {
    return Status::InvalidArgument(
        "AVG is not distributive; roll it up from its (sum, count) pair "
        "with RollUpAverage");
  }
  const sparql::ResultTable& table = answer.table();
  RDFA_ASSIGN_OR_RETURN(std::vector<int> keep,
                        ResolveColumns(table, keep_columns));
  int agg_idx = table.ColumnIndex(agg_column);
  if (agg_idx < 0) return Status::NotFound("no column " + agg_column);

  struct Acc {
    std::vector<Term> key_terms;
    double sum = 0;
    bool first = true;
    double best = 0;
  };
  std::map<std::string, Acc> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto v = Value::FromTerm(table.at(r, agg_idx)).AsNumeric();
    if (!v.has_value()) {
      return Status::TypeError("non-numeric aggregate cell in row " +
                               std::to_string(r));
    }
    Acc& acc = groups[GroupKey(table, r, keep)];
    if (acc.key_terms.empty()) {
      for (int c : keep) acc.key_terms.push_back(table.at(r, c));
    }
    acc.sum += *v;
    if (acc.first) {
      acc.best = *v;
      acc.first = false;
    } else if (op == AggOp::kMin) {
      acc.best = std::min(acc.best, *v);
    } else if (op == AggOp::kMax) {
      acc.best = std::max(acc.best, *v);
    }
  }

  std::vector<std::string> columns = keep_columns;
  columns.push_back(agg_column);
  sparql::ResultTable out(columns);
  for (auto& [key, acc] : groups) {
    std::vector<Term> row = std::move(acc.key_terms);
    double value =
        (op == AggOp::kSum || op == AggOp::kCount) ? acc.sum : acc.best;
    if (value == static_cast<int64_t>(value)) {
      row.push_back(Term::Integer(static_cast<int64_t>(value)));
    } else {
      row.push_back(Term::Double(value));
    }
    out.AddRow(std::move(row));
  }
  return AnswerFrame(std::move(out));
}

Result<AnswerFrame> RollUpAverage(const AnswerFrame& answer,
                                  const std::vector<std::string>& keep_columns,
                                  const std::string& sum_column,
                                  const std::string& count_column) {
  const sparql::ResultTable& table = answer.table();
  RDFA_ASSIGN_OR_RETURN(std::vector<int> keep,
                        ResolveColumns(table, keep_columns));
  int sum_idx = table.ColumnIndex(sum_column);
  int count_idx = table.ColumnIndex(count_column);
  if (sum_idx < 0) return Status::NotFound("no column " + sum_column);
  if (count_idx < 0) return Status::NotFound("no column " + count_column);

  struct Acc {
    std::vector<Term> key_terms;
    double sum = 0;
    double count = 0;
  };
  std::map<std::string, Acc> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto s = Value::FromTerm(table.at(r, sum_idx)).AsNumeric();
    auto n = Value::FromTerm(table.at(r, count_idx)).AsNumeric();
    if (!s.has_value() || !n.has_value()) {
      return Status::TypeError("non-numeric sum/count cell in row " +
                               std::to_string(r));
    }
    Acc& acc = groups[GroupKey(table, r, keep)];
    if (acc.key_terms.empty()) {
      for (int c : keep) acc.key_terms.push_back(table.at(r, c));
    }
    acc.sum += *s;
    acc.count += *n;
  }

  std::vector<std::string> columns = keep_columns;
  columns.push_back("sum");
  columns.push_back("count");
  columns.push_back("avg");
  sparql::ResultTable out(columns);
  for (auto& [key, acc] : groups) {
    std::vector<Term> row = std::move(acc.key_terms);
    row.push_back(Term::Double(acc.sum));
    row.push_back(Term::Integer(static_cast<int64_t>(acc.count)));
    row.push_back(
        Term::Double(acc.count == 0 ? 0 : acc.sum / acc.count));
    out.AddRow(std::move(row));
  }
  return AnswerFrame(std::move(out));
}

}  // namespace rdfa::analytics
