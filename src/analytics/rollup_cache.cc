#include "analytics/rollup_cache.h"

#include <map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sparql/value.h"

namespace rdfa::analytics {

using hifun::AggOp;
using rdf::Term;
using sparql::Value;

namespace {

Result<std::vector<int>> ResolveColumns(
    const sparql::ResultTable& table, const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    int idx = table.ColumnIndex(name);
    if (idx < 0) return Status::NotFound("no column " + name);
    out.push_back(idx);
  }
  return out;
}

std::string GroupKey(const sparql::ResultTable& table, size_t row,
                     const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) key += table.at(row, c).ToNTriples() + "\t";
  return key;
}

/// Scans rows [0, n) into a keyed accumulator map. With `threads` > 1 the
/// scan runs in parallel morsels building per-thread partial tables, folded
/// back in morsel order with `merge` — the same distributive-merge shape
/// the roll-up itself relies on. `scan(row, &map)` must be safe to call
/// concurrently on disjoint maps; errors propagate from the earliest row.
template <typename Acc, typename ScanFn, typename MergeFn>
Status AccumulateRows(size_t n, int threads, const QueryContext& ctx,
                      const ScanFn& scan, const MergeFn& merge,
                      std::map<std::string, Acc>* groups) {
  constexpr size_t kMinRowsParallel = 128;
  if (threads <= 1 || n < kMinRowsParallel) {
    for (size_t r = 0; r < n; ++r) {
      if (r % kMinRowsParallel == 0) {
        RDFA_RETURN_NOT_OK(ctx.Check("rollup-merge"));
      }
      RDFA_RETURN_NOT_OK(scan(r, groups));
    }
    return Status::OK();
  }
  auto morsels = Morsels(n, static_cast<size_t>(threads) * 4, 64);
  std::vector<std::map<std::string, Acc>> parts(morsels.size());
  std::vector<Status> statuses(morsels.size(), Status::OK());
  ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
    Status admitted = ctx.Check("rollup-merge");
    if (!admitted.ok()) {
      statuses[m] = admitted;
      return;
    }
    auto [lo, hi] = morsels[m];
    for (size_t r = lo; r < hi; ++r) {
      Status st = scan(r, &parts[m]);
      if (!st.ok()) {
        statuses[m] = st;
        return;
      }
    }
  });
  RDFA_RETURN_NOT_OK(ctx.Check("rollup-merge"));
  for (const Status& st : statuses) RDFA_RETURN_NOT_OK(st);
  for (std::map<std::string, Acc>& part : parts) {
    for (auto& [key, acc] : part) {
      auto it = groups->find(key);
      if (it == groups->end()) {
        groups->emplace(key, std::move(acc));
      } else {
        merge(acc, &it->second);
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<AnswerFrame> RollUpAnswer(const AnswerFrame& answer,
                                 const std::vector<std::string>& keep_columns,
                                 const std::string& agg_column,
                                 AggOp op, int threads,
                                 const QueryContext& ctx) {
  if (op == AggOp::kAvg) {
    return Status::InvalidArgument(
        "AVG is not distributive; roll it up from its (sum, count) pair "
        "with RollUpAverage");
  }
  TraceSpan span(ctx.tracer(), "rollup-cache");
  MetricsRegistry::Global()
      .GetCounter("rdfa_rollup_reuse_total",
                  "Roll-ups computed from a materialized answer frame")
      .Increment();
  const sparql::ResultTable& table = answer.table();
  span.Arg("input_rows", static_cast<uint64_t>(table.num_rows()));
  RDFA_ASSIGN_OR_RETURN(std::vector<int> keep,
                        ResolveColumns(table, keep_columns));
  int agg_idx = table.ColumnIndex(agg_column);
  if (agg_idx < 0) return Status::NotFound("no column " + agg_column);

  struct Acc {
    std::vector<Term> key_terms;
    double sum = 0;
    bool first = true;
    double best = 0;
  };
  std::map<std::string, Acc> groups;
  auto scan = [&](size_t r, std::map<std::string, Acc>* out) -> Status {
    auto v = Value::FromTerm(table.at(r, agg_idx)).AsNumeric();
    if (!v.has_value()) {
      return Status::TypeError("non-numeric aggregate cell in row " +
                               std::to_string(r));
    }
    Acc& acc = (*out)[GroupKey(table, r, keep)];
    if (acc.key_terms.empty()) {
      for (int c : keep) acc.key_terms.push_back(table.at(r, c));
    }
    acc.sum += *v;
    if (acc.first) {
      acc.best = *v;
      acc.first = false;
    } else if (op == AggOp::kMin) {
      acc.best = std::min(acc.best, *v);
    } else if (op == AggOp::kMax) {
      acc.best = std::max(acc.best, *v);
    }
    return Status::OK();
  };
  auto merge = [&](const Acc& src, Acc* dst) {
    dst->sum += src.sum;
    if (op == AggOp::kMin) {
      dst->best = std::min(dst->best, src.best);
    } else if (op == AggOp::kMax) {
      dst->best = std::max(dst->best, src.best);
    }
  };
  RDFA_RETURN_NOT_OK(AccumulateRows<Acc>(table.num_rows(), threads, ctx, scan,
                                         merge, &groups));
  span.Arg("output_groups", static_cast<uint64_t>(groups.size()));

  std::vector<std::string> columns = keep_columns;
  columns.push_back(agg_column);
  sparql::ResultTable out(columns);
  for (auto& [key, acc] : groups) {
    std::vector<Term> row = std::move(acc.key_terms);
    double value =
        (op == AggOp::kSum || op == AggOp::kCount) ? acc.sum : acc.best;
    if (value == static_cast<int64_t>(value)) {
      row.push_back(Term::Integer(static_cast<int64_t>(value)));
    } else {
      row.push_back(Term::Double(value));
    }
    out.AddRow(std::move(row));
  }
  return AnswerFrame(std::move(out));
}

Result<AnswerFrame> RollUpAverage(const AnswerFrame& answer,
                                  const std::vector<std::string>& keep_columns,
                                  const std::string& sum_column,
                                  const std::string& count_column,
                                  int threads, const QueryContext& ctx) {
  TraceSpan span(ctx.tracer(), "rollup-cache");
  MetricsRegistry::Global()
      .GetCounter("rdfa_rollup_reuse_total",
                  "Roll-ups computed from a materialized answer frame")
      .Increment();
  const sparql::ResultTable& table = answer.table();
  span.Arg("input_rows", static_cast<uint64_t>(table.num_rows()));
  RDFA_ASSIGN_OR_RETURN(std::vector<int> keep,
                        ResolveColumns(table, keep_columns));
  int sum_idx = table.ColumnIndex(sum_column);
  int count_idx = table.ColumnIndex(count_column);
  if (sum_idx < 0) return Status::NotFound("no column " + sum_column);
  if (count_idx < 0) return Status::NotFound("no column " + count_column);

  struct Acc {
    std::vector<Term> key_terms;
    double sum = 0;
    double count = 0;
  };
  std::map<std::string, Acc> groups;
  auto scan = [&](size_t r, std::map<std::string, Acc>* out) -> Status {
    auto s = Value::FromTerm(table.at(r, sum_idx)).AsNumeric();
    auto n = Value::FromTerm(table.at(r, count_idx)).AsNumeric();
    if (!s.has_value() || !n.has_value()) {
      return Status::TypeError("non-numeric sum/count cell in row " +
                               std::to_string(r));
    }
    Acc& acc = (*out)[GroupKey(table, r, keep)];
    if (acc.key_terms.empty()) {
      for (int c : keep) acc.key_terms.push_back(table.at(r, c));
    }
    acc.sum += *s;
    acc.count += *n;
    return Status::OK();
  };
  auto merge = [&](const Acc& src, Acc* dst) {
    dst->sum += src.sum;
    dst->count += src.count;
  };
  RDFA_RETURN_NOT_OK(AccumulateRows<Acc>(table.num_rows(), threads, ctx, scan,
                                         merge, &groups));
  span.Arg("output_groups", static_cast<uint64_t>(groups.size()));

  std::vector<std::string> columns = keep_columns;
  columns.push_back("sum");
  columns.push_back("count");
  columns.push_back("avg");
  sparql::ResultTable out(columns);
  for (auto& [key, acc] : groups) {
    std::vector<Term> row = std::move(acc.key_terms);
    row.push_back(Term::Double(acc.sum));
    row.push_back(Term::Integer(static_cast<int64_t>(acc.count)));
    row.push_back(
        Term::Double(acc.count == 0 ? 0 : acc.sum / acc.count));
    out.AddRow(std::move(row));
  }
  return AnswerFrame(std::move(out));
}

RollupCache::RollupCache(CacheOptions opts)
    : cache_(opts, "rdfa_rollup_cache") {}

std::shared_ptr<const AnswerFrame> RollupCache::Get(const std::string& key,
                                                    uint64_t generation) {
  return cache_.Get(key, generation);
}

std::shared_ptr<const AnswerFrame> RollupCache::Get(
    const std::string& key,
    const std::function<uint64_t(const CacheFootprint&)>& stamp_fn) {
  return cache_.Get(key, stamp_fn);
}

void RollupCache::Put(const std::string& key, uint64_t generation,
                      AnswerFrame frame, CacheFootprint footprint) {
  size_t bytes = frame.table().ApproxBytes();
  cache_.Put(key, generation, std::move(frame), bytes, std::move(footprint));
}

Result<AnswerFrame> RollupCache::RollUp(
    const std::string& source_key, uint64_t generation,
    const AnswerFrame& answer, const std::vector<std::string>& keep_columns,
    const std::string& agg_column, AggOp op, int threads,
    const QueryContext& ctx) {
  std::string key = source_key + "|rollup|agg=" + agg_column +
                    "|op=" + std::to_string(static_cast<int>(op)) + "|keep=";
  for (const std::string& c : keep_columns) key += c + ",";
  std::shared_ptr<const AnswerFrame> hit = Get(key, generation);
  if (hit != nullptr) return *hit;
  RDFA_ASSIGN_OR_RETURN(
      AnswerFrame rolled,
      RollUpAnswer(answer, keep_columns, agg_column, op, threads, ctx));
  Put(key, generation, rolled);
  return rolled;
}

}  // namespace rdfa::analytics
