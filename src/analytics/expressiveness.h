#ifndef RDFA_ANALYTICS_EXPRESSIVENESS_H_
#define RDFA_ANALYTICS_EXPRESSIVENESS_H_

#include <string>
#include <vector>

#include "hifun/query.h"

namespace rdfa::analytics {

/// Verdict of the Chapter 7.1 analysis ("Expressible HIFUN queries"): can a
/// given HIFUN query be formulated through the interaction model's clicks
/// alone, and roughly how many actions would that take?
struct ExpressivenessReport {
  bool expressible = false;
  /// When inexpressible, one reason per offending construct.
  std::vector<std::string> reasons;
  /// Estimated number of UI actions: class click + one G click per grouping
  /// component (+1 for a transform), one Σ click, one filter per
  /// restriction, +2 when a result restriction forces an AF reload.
  int estimated_actions = 0;
};

/// Classifies `query` against the model of Chapter 5:
///   expressible  - grouping: a pairing of compositions of properties, each
///                  component optionally wrapped in ONE derived function
///                  (the transform button);
///                - measuring: a composition of properties or the identity;
///                - restrictions: forward property paths compared to a
///                  value (clicks / range filters);
///                - ops: any subset of SUM/AVG/COUNT/MIN/MAX;
///                - result restriction: yes, via loading the AF (§5.3.3).
///   NOT expressible (paper §7.1 limits):
///                - derived functions *inside* a composition (only the
///                  outermost transform has a button);
///                - pairings nested in the measuring function;
///                - restrictions on the operation other than comparisons.
ExpressivenessReport CheckExpressible(const hifun::Query& query);

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_EXPRESSIVENESS_H_
