#include "analytics/olap.h"

#include <algorithm>
#include <memory>

#include "analytics/rollup_cache.h"
#include "common/query_log.h"
#include "sparql/footprint.h"

namespace rdfa::analytics {

OlapView::OlapView(AnalyticsSession* session,
                   std::vector<Dimension> dimensions, MeasureSpec measure)
    : session_(session), measure_(std::move(measure)) {
  for (Dimension& d : dimensions) {
    DimState s;
    s.dim = std::move(d);
    dims_.push_back(std::move(s));
  }
}

OlapView::DimState* OlapView::FindDim(const std::string& name) {
  for (DimState& d : dims_) {
    if (d.dim.name == name) return &d;
  }
  return nullptr;
}

Status OlapView::RollUp(const std::string& dim) {
  DimState* d = FindDim(dim);
  if (d == nullptr || !d->active) return Status::NotFound("no active dimension " + dim);
  if (d->level + 1 >= d->dim.levels.size()) {
    return Status::InvalidArgument(dim + " is already at its coarsest level");
  }
  ++d->level;
  return Status::OK();
}

Status OlapView::DrillDown(const std::string& dim) {
  DimState* d = FindDim(dim);
  if (d == nullptr || !d->active) return Status::NotFound("no active dimension " + dim);
  if (d->level == 0) {
    return Status::InvalidArgument(dim + " is already at its finest level");
  }
  --d->level;
  return Status::OK();
}

Status OlapView::SetLevel(const std::string& dim, size_t level) {
  DimState* d = FindDim(dim);
  if (d == nullptr) return Status::NotFound("no dimension " + dim);
  if (level >= d->dim.levels.size()) {
    return Status::InvalidArgument("no such level");
  }
  d->level = level;
  d->active = true;
  return Status::OK();
}

Status OlapView::Slice(const std::string& dim, const rdf::Term& value) {
  DimState* d = FindDim(dim);
  if (d == nullptr || !d->active) return Status::NotFound("no active dimension " + dim);
  const DimensionLevel& level = d->dim.levels[d->level];
  if (!level.derived_function.empty()) {
    return Status::Unsupported(
        "slicing on a derived level is not supported; slice on the base "
        "attribute instead");
  }
  std::vector<fs::PropRef> path;
  path.reserve(level.path.size());
  for (const std::string& p : level.path) path.push_back(fs::PropRef{p, false});
  RDFA_RETURN_NOT_OK(session_->fs().ClickValue(path, value));
  d->active = false;
  return Status::OK();
}

Status OlapView::Dice(const std::string& dim, std::optional<double> min,
                      std::optional<double> max) {
  DimState* d = FindDim(dim);
  if (d == nullptr || !d->active) return Status::NotFound("no active dimension " + dim);
  const DimensionLevel& level = d->dim.levels[d->level];
  if (!level.derived_function.empty()) {
    return Status::Unsupported("dicing on a derived level is not supported");
  }
  std::vector<fs::PropRef> path;
  path.reserve(level.path.size());
  for (const std::string& p : level.path) path.push_back(fs::PropRef{p, false});
  return session_->fs().ClickRange(path, min, max);
}

void OlapView::Pivot() {
  if (dims_.size() > 1) {
    std::rotate(dims_.begin(), dims_.end() - 1, dims_.end());
  }
}

void OlapView::set_thread_count(int threads) {
  session_->set_thread_count(threads);
}

void OlapView::set_query_context(QueryContext ctx) {
  session_->set_query_context(std::move(ctx));
}

const sparql::ExecStats& OlapView::last_exec_stats() const {
  return session_->last_exec_stats();
}

int OlapView::LevelOf(const std::string& dim) const {
  for (const DimState& d : dims_) {
    if (d.dim.name == dim) return d.active ? static_cast<int>(d.level) : -1;
  }
  return -1;
}

Result<AnswerFrame> OlapView::Materialize() {
  session_->ClearAnalytics();
  for (const DimState& d : dims_) {
    if (!d.active) continue;
    const DimensionLevel& level = d.dim.levels[d.level];
    GroupingSpec g;
    g.path = level.path;
    g.derived_function = level.derived_function;
    RDFA_RETURN_NOT_OK(session_->ClickGroupBy(std::move(g)));
  }
  RDFA_RETURN_NOT_OK(session_->ClickAggregate(measure_));
  if (cache_ == nullptr) return session_->Execute();
  // Footprint-stamped reuse: the cube is keyed by its normalized SPARQL
  // text and stamped with the sum of per-predicate epochs over the
  // predicates that SPARQL actually touches, so an update to an unrelated
  // predicate leaves materialized cubes valid. Unparsable / unbounded
  // queries degrade to a wildcard footprint, i.e. the classic
  // global-generation stamp.
  RDFA_ASSIGN_OR_RETURN(std::string sparql, session_->BuildSparql());
  const std::string key = NormalizeQueryText(sparql);
  const rdf::Graph* graph = session_->graph();
  const uint64_t generation = graph->Generation();
  std::shared_ptr<const AnswerFrame> hit = cache_->Get(
      key, [graph](const CacheFootprint& fp) {
        return graph->FootprintStamp(fp);
      });
  if (hit != nullptr) {
    session_->InstallAnswer(*hit);
    return *hit;
  }
  CacheFootprint footprint = sparql::FootprintOfQueryText(sparql);
  const uint64_t stamp = graph->FootprintStamp(footprint);
  RDFA_ASSIGN_OR_RETURN(AnswerFrame frame, session_->Execute());
  if (session_->graph()->Generation() == generation) {
    cache_->Put(key, stamp, frame, std::move(footprint));
  }
  return frame;
}

}  // namespace rdfa::analytics
