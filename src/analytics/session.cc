#include "analytics/session.h"

#include <optional>

#include "analytics/fco.h"
#include "common/trace.h"
#include "hifun/evaluator.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "translator/translator.h"

namespace rdfa::analytics {

using hifun::AttrExpr;
using hifun::AttrExprPtr;

AnalyticsSession::AnalyticsSession(rdf::Graph* graph, fs::EvalMode mode)
    : graph_(graph), fs_(graph, mode) {}

Status AnalyticsSession::ClickGroupBy(GroupingSpec spec) {
  if (spec.path.empty()) {
    return Status::InvalidArgument("a grouping needs a property path");
  }
  groupings_.push_back(std::move(spec));
  return Status::OK();
}

Status AnalyticsSession::RemoveGroupBy(size_t index) {
  if (index >= groupings_.size()) {
    return Status::InvalidArgument("no such grouping");
  }
  groupings_.erase(groupings_.begin() + static_cast<long>(index));
  return Status::OK();
}

Status AnalyticsSession::ClickAggregate(MeasureSpec spec) {
  if (spec.ops.empty()) {
    return Status::InvalidArgument("pick at least one aggregate function");
  }
  if (spec.path.empty()) {
    // COUNT over the items themselves: only COUNT makes sense.
    for (hifun::AggOp op : spec.ops) {
      if (op != hifun::AggOp::kCount) {
        return Status::InvalidArgument(
            "an empty measure path only supports COUNT");
      }
    }
  }
  measure_ = std::move(spec);
  return Status::OK();
}

void AnalyticsSession::SetResultRestriction(std::string op, double value,
                                            size_t op_index) {
  hifun::ResultRestriction rr;
  rr.op = std::move(op);
  rr.value = value;
  rr.op_index = op_index;
  result_restriction_ = rr;
}

void AnalyticsSession::ClearAnalytics() {
  groupings_.clear();
  measure_.reset();
  result_restriction_.reset();
}

namespace {

AttrExprPtr PathToAttr(const std::vector<std::string>& path) {
  std::vector<AttrExprPtr> hops;
  hops.reserve(path.size());
  for (const std::string& p : path) hops.push_back(AttrExpr::Property(p));
  return AttrExpr::Compose(std::move(hops));
}

}  // namespace

Result<hifun::Query> AnalyticsSession::BuildHifunQuery() const {
  if (!measure_.has_value()) {
    return Status::Precondition(
        "no aggregate chosen: click the sigma button on a facet first");
  }
  hifun::Query q;
  const fs::Intention& intent = fs_.current().intent;
  q.root_class = intent.root_class;

  // FS conditions restrict the item set E (rg of §5.1 examples).
  for (const fs::Condition& c : intent.conditions) {
    std::vector<std::string> path;
    path.reserve(c.path.size());
    for (const fs::PropRef& p : c.path) {
      if (p.inverse) {
        return Status::Unsupported(
            "inverse properties in an analytic restriction are not "
            "supported; refocus the session instead");
      }
      path.push_back(p.iri);
    }
    if (c.kind == fs::Condition::Kind::kValue) {
      hifun::Restriction r;
      r.path = path;
      r.op = "=";
      r.value = c.value;
      q.group_restrictions.push_back(std::move(r));
    } else {
      if (c.min.has_value()) {
        hifun::Restriction r;
        r.path = path;
        r.op = ">=";
        r.value = rdf::Term::Double(*c.min);
        q.group_restrictions.push_back(std::move(r));
      }
      if (c.max.has_value()) {
        hifun::Restriction r;
        r.path = path;
        r.op = "<=";
        r.value = rdf::Term::Double(*c.max);
        q.group_restrictions.push_back(std::move(r));
      }
    }
  }

  // Grouping expression: the pairing of all G-button choices.
  if (!groupings_.empty()) {
    std::vector<AttrExprPtr> components;
    components.reserve(groupings_.size());
    for (const GroupingSpec& g : groupings_) {
      AttrExprPtr attr = PathToAttr(g.path);
      if (!g.derived_function.empty()) {
        attr = AttrExpr::Derived(g.derived_function, std::move(attr));
      }
      components.push_back(std::move(attr));
    }
    q.grouping = AttrExpr::Pair(std::move(components));
  }

  // Measuring expression.
  q.measuring = measure_->path.empty() ? AttrExpr::Identity()
                                       : PathToAttr(measure_->path);
  q.ops = measure_->ops;
  q.result_restriction = result_restriction_;
  return q;
}

Result<std::string> AnalyticsSession::BuildSparql() const {
  RDFA_ASSIGN_OR_RETURN(hifun::Query q, BuildHifunQuery());
  return translator::TranslateToSparql(q);
}

Result<AnswerFrame> AnalyticsSession::Execute() {
  std::optional<TraceSpan> parse_span;
  parse_span.emplace(ctx_.tracer(), "parse");
  RDFA_ASSIGN_OR_RETURN(std::string sparql, BuildSparql());
  RDFA_ASSIGN_OR_RETURN(sparql::ParsedQuery parsed,
                        sparql::ParseQuery(sparql));
  parse_span.reset();
  sparql::Executor exec(graph_);
  exec.set_thread_count(thread_count_);
  exec.set_join_strategy(join_strategy_);
  exec.set_use_dp(use_dp_);
  exec.set_query_context(ctx_);
  Result<sparql::ResultTable> table = exec.Execute(parsed);
  exec_stats_ = exec.stats();
  RDFA_RETURN_NOT_OK(table.status());
  answer_ = AnswerFrame(std::move(table).value());
  return answer_;
}

Result<AnswerFrame> AnalyticsSession::ExecuteDirect() const {
  RDFA_ASSIGN_OR_RETURN(hifun::Query q, BuildHifunQuery());
  hifun::Evaluator eval(*graph_, thread_count_);
  RDFA_ASSIGN_OR_RETURN(sparql::ResultTable table, eval.Evaluate(q, ctx_));
  return AnswerFrame(std::move(table));
}

Result<std::string> AnalyticsSession::ApplyTransform(
    TransformKind kind, const std::vector<std::string>& path,
    const std::string& feature_name) {
  const std::string feature = "urn:rdfa:feature#" + feature_name;
  const std::string& root = fs_.current().intent.root_class;
  Result<size_t> added = Status::Internal("unset");
  switch (kind) {
    case TransformKind::kValue:
      if (path.size() != 1) {
        return Status::InvalidArgument("kValue takes one property");
      }
      added = FcoValue(graph_, root, path[0], feature);
      break;
    case TransformKind::kExists:
      if (path.size() != 1) {
        return Status::InvalidArgument("kExists takes one property");
      }
      added = FcoExists(graph_, root, path[0], feature);
      break;
    case TransformKind::kCount:
      if (path.size() != 1) {
        return Status::InvalidArgument("kCount takes one property");
      }
      added = FcoCount(graph_, root, path[0], feature);
      break;
    case TransformKind::kPathCount:
      if (path.size() != 2) {
        return Status::InvalidArgument("kPathCount takes two properties");
      }
      added = FcoPathCount(graph_, root, path[0], path[1], feature);
      break;
    case TransformKind::kPathMaxFreq:
      if (path.size() != 2) {
        return Status::InvalidArgument("kPathMaxFreq takes two properties");
      }
      added = FcoPathValueMaxFreq(graph_, root, path[0], path[1], feature);
      break;
  }
  RDFA_RETURN_NOT_OK(added.status());
  return feature;
}

Result<std::unique_ptr<AnalyticsSession>> AnalyticsSession::ExploreAnswer(
    rdf::Graph* af_graph) const {
  if (answer_.table().num_columns() == 0) {
    return Status::Precondition("execute an analytic query first");
  }
  RDFA_ASSIGN_OR_RETURN(size_t added, answer_.LoadAsDataset(af_graph));
  (void)added;
  auto session = std::make_unique<AnalyticsSession>(af_graph);
  RDFA_RETURN_NOT_OK(session->fs().ClickClass(AnswerFrame::RowClassIri()));
  return session;
}

}  // namespace rdfa::analytics
