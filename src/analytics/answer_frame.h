#ifndef RDFA_ANALYTICS_ANSWER_FRAME_H_
#define RDFA_ANALYTICS_ANSWER_FRAME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "sparql/result_table.h"

namespace rdfa::analytics {

/// Namespace under which answer-frame columns and rows are minted when the
/// answer is reloaded as a dataset (§5.3.3).
inline constexpr char kAfNamespace[] = "urn:rdfa:af#";

/// The Answer Frame (AF) of §5.1: holds the result table of the current
/// analytic query and supports reloading it as a new RDF dataset so that
/// further faceted restrictions express HAVING clauses and arbitrarily
/// nested analytic queries.
class AnswerFrame {
 public:
  AnswerFrame() = default;
  explicit AnswerFrame(sparql::ResultTable table) : table_(std::move(table)) {}

  const sparql::ResultTable& table() const { return table_; }

  /// Loads the answer as a new dataset into `*out` (paper §5.3.3): each
  /// tuple t_i gets a fresh row resource typed `urn:rdfa:af#Row`, and k
  /// triples (t_i, A_j, t_ij), where A_j is the column IRI
  /// `urn:rdfa:af#<column-name>`. Unbound cells produce no triple. Returns
  /// the number of triples added (n*k plus n type triples when total).
  Result<size_t> LoadAsDataset(rdf::Graph* out) const;

  /// §5.1 "Extra Columns": a copy of the frame keeping only `columns`, in
  /// the given order (lets the user add/remove grouping columns from the
  /// display). Unknown names are reported as NotFound.
  Result<AnswerFrame> ProjectColumns(
      const std::vector<std::string>& columns) const;

  /// IRI of the row class minted by LoadAsDataset.
  static std::string RowClassIri() { return std::string(kAfNamespace) + "Row"; }
  /// IRI of the attribute property for `column`.
  static std::string ColumnIri(const std::string& column) {
    return std::string(kAfNamespace) + column;
  }

 private:
  sparql::ResultTable table_;
};

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_ANSWER_FRAME_H_
