#include "analytics/expressiveness.h"

namespace rdfa::analytics {

using hifun::AttrExpr;
using hifun::AttrExprPtr;

namespace {

/// A plain composition of properties (no derived steps, no pairings)?
bool IsPropertyPath(const AttrExpr& attr) {
  switch (attr.kind) {
    case AttrExpr::Kind::kProperty:
      return true;
    case AttrExpr::Kind::kCompose:
      for (const AttrExprPtr& step : attr.args) {
        if (step->kind != AttrExpr::Kind::kProperty) return false;
      }
      return true;
    default:
      return false;
  }
}

/// A grouping component the G button can produce: a property path,
/// optionally wrapped in exactly one outermost derived function.
bool IsGroupingComponent(const AttrExpr& attr, std::string* reason) {
  if (attr.kind == AttrExpr::Kind::kDerived) {
    if (!IsPropertyPath(*attr.args[0])) {
      *reason = "derived function '" + attr.function +
                "' wraps a non-path expression; only the outermost transform "
                "has a button";
      return false;
    }
    return true;
  }
  if (attr.kind == AttrExpr::Kind::kCompose) {
    for (const AttrExprPtr& step : attr.args) {
      if (step->kind == AttrExpr::Kind::kDerived) {
        *reason =
            "derived function inside a composition: the UI offers transforms "
            "only on the final facet";
        return false;
      }
      if (step->kind == AttrExpr::Kind::kPair) {
        *reason = "pairing nested inside a composition";
        return false;
      }
    }
    return true;
  }
  if (attr.kind == AttrExpr::Kind::kProperty ||
      attr.kind == AttrExpr::Kind::kIdentity) {
    return true;
  }
  *reason = "unsupported grouping construct";
  return false;
}

size_t PathLength(const AttrExpr& attr) {
  if (attr.kind == AttrExpr::Kind::kCompose) return attr.args.size();
  return 1;
}

}  // namespace

ExpressivenessReport CheckExpressible(const hifun::Query& query) {
  ExpressivenessReport report;
  report.expressible = true;
  int actions = query.root_class.empty() ? 0 : 1;  // class click

  // Grouping: flatten the pairing.
  std::vector<AttrExprPtr> components;
  if (query.grouping != nullptr) {
    if (query.grouping->kind == AttrExpr::Kind::kPair) {
      for (const AttrExprPtr& c : query.grouping->args) components.push_back(c);
    } else {
      components.push_back(query.grouping);
    }
  }
  for (const AttrExprPtr& c : components) {
    std::string reason;
    if (c->kind == AttrExpr::Kind::kPair) {
      report.expressible = false;
      report.reasons.push_back("nested pairing in the grouping function");
      continue;
    }
    if (!IsGroupingComponent(*c, &reason)) {
      report.expressible = false;
      report.reasons.push_back(reason);
      continue;
    }
    actions += 1;  // G click
    if (c->kind == AttrExpr::Kind::kDerived) actions += 1;  // transform
    (void)PathLength(*c);
  }

  // Measuring: property path or identity; no pairings, no derived (the Σ
  // button aggregates raw values).
  if (query.measuring != nullptr) {
    if (query.measuring->kind == AttrExpr::Kind::kPair) {
      report.expressible = false;
      report.reasons.push_back("pairing in the measuring function");
    } else if (query.measuring->kind == AttrExpr::Kind::kDerived) {
      report.expressible = false;
      report.reasons.push_back(
          "derived measuring function: apply an FCO transformation first");
    } else if (query.measuring->kind != AttrExpr::Kind::kIdentity &&
               !IsPropertyPath(*query.measuring)) {
      report.expressible = false;
      report.reasons.push_back("measuring function is not a property path");
    }
  }
  actions += 1;  // Σ click (+ op ticks folded into it)

  // Restrictions are clicks / range filters on forward paths.
  for (const auto& r : query.group_restrictions) {
    actions += 1;
    (void)r;
  }
  for (const auto& r : query.measure_restrictions) {
    actions += 1;
    (void)r;
  }

  // Result restriction: expressible through the AF reload (§5.3.3).
  if (query.result_restriction.has_value()) {
    actions += 2;  // "Explore with FS" + range filter on the agg column
  }

  report.estimated_actions = actions;
  return report;
}

}  // namespace rdfa::analytics
