#ifndef RDFA_ANALYTICS_ROLLUP_CACHE_H_
#define RDFA_ANALYTICS_ROLLUP_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "common/lru_cache.h"
#include "common/query_context.h"
#include "hifun/attr_expr.h"

namespace rdfa::analytics {

/// Materialized-answer reuse: computing a *coarser* grouping from an
/// already-materialized answer frame instead of the base KG — the
/// optimization of the works the dissertation surveys in §3.3 ([16], [51]:
/// "use the materialized result of an RDF analytical query to compute the
/// answer to a subsequent query"), and what makes OLAP roll-up cheap.
///
/// `keep_columns` selects the grouping columns that remain; rows sharing
/// those values are merged; the `agg_column` values are re-aggregated with
/// `op`. Only *distributive* aggregates are valid here: SUM, COUNT (sums of
/// partial counts), MIN, MAX. AVG is algebraic — use RollUpAverage with the
/// (sum, count) pair.
///
/// `threads` > 1 scans the answer in parallel morsels with per-thread
/// partial accumulator tables, merged with the same distributive logic
/// (sum of sums, min of mins, ...). Integer-valued cells merge exactly;
/// for fractional doubles the partial-sum association may differ from the
/// serial left fold in the last ulp.
/// `ctx` (optional) is the deadline/cancellation context: the merge scan
/// checks it per morsel and unwinds to DeadlineExceeded/Cancelled.
Result<AnswerFrame> RollUpAnswer(const AnswerFrame& answer,
                                 const std::vector<std::string>& keep_columns,
                                 const std::string& agg_column,
                                 hifun::AggOp op, int threads = 1,
                                 const QueryContext& ctx = QueryContext());

/// Rolls up an average from its (sum, count) decomposition: the result has
/// the kept grouping columns plus columns "sum", "count", "avg".
/// `threads` as in RollUpAnswer.
Result<AnswerFrame> RollUpAverage(const AnswerFrame& answer,
                                  const std::vector<std::string>& keep_columns,
                                  const std::string& sum_column,
                                  const std::string& count_column,
                                  int threads = 1,
                                  const QueryContext& ctx = QueryContext());

/// Generation-aware memo of answer frames, making OLAP roll-up reuse safe
/// under updates: every stored frame is stamped with the graph generation
/// it was computed at, and a lookup under a newer generation is a miss that
/// lazily evicts the stale frame (same protocol as the endpoint answer
/// cache — see DESIGN.md §11). Thread-safe; counters exported as
/// rdfa_rollup_cache_{hits,misses,evictions,invalidations}_total.
class RollupCache {
 public:
  static CacheOptions DefaultOptions() {
    CacheOptions opts;
    opts.max_bytes = 32ull << 20;
    opts.max_entries = 512;
    return opts;
  }

  explicit RollupCache(CacheOptions opts = DefaultOptions());

  /// The frame stored under `key` at exactly `generation`, or null.
  std::shared_ptr<const AnswerFrame> Get(const std::string& key,
                                         uint64_t generation);

  /// Footprint-validated lookup: the stored frame survives iff its stamp
  /// still equals `stamp_fn(stored footprint)` — with
  /// Graph::FootprintStamp as the stamp function, only a mutation touching
  /// one of the frame's predicates invalidates it (predicate-granular
  /// invalidation; see common/lru_cache.h).
  std::shared_ptr<const AnswerFrame> Get(
      const std::string& key,
      const std::function<uint64_t(const CacheFootprint&)>& stamp_fn);

  /// Stores `frame` (computed at `generation`) under `key`. The optional
  /// footprint (default wildcard) feeds footprint-validated lookups.
  void Put(const std::string& key, uint64_t generation, AnswerFrame frame,
           CacheFootprint footprint = CacheFootprint::Wildcard());

  /// Memoized RollUpAnswer: returns the cached roll-up of
  /// (`source_key`, keep_columns, agg_column, op) when its stamped
  /// generation matches, else computes it (same semantics and byte-identical
  /// result as the free function) and fills the cache. `source_key` names
  /// the materialized source answer — e.g. the SPARQL fingerprint that
  /// produced it; `generation` is the graph generation that answer was
  /// computed at.
  Result<AnswerFrame> RollUp(const std::string& source_key,
                             uint64_t generation, const AnswerFrame& answer,
                             const std::vector<std::string>& keep_columns,
                             const std::string& agg_column, hifun::AggOp op,
                             int threads = 1,
                             const QueryContext& ctx = QueryContext());

  void Clear() { cache_.Clear(); }
  CacheStats Stats() const { return cache_.Stats(); }

 private:
  LruCache<AnswerFrame> cache_;
};

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_ROLLUP_CACHE_H_
