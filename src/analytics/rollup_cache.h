#ifndef RDFA_ANALYTICS_ROLLUP_CACHE_H_
#define RDFA_ANALYTICS_ROLLUP_CACHE_H_

#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "common/query_context.h"
#include "hifun/attr_expr.h"

namespace rdfa::analytics {

/// Materialized-answer reuse: computing a *coarser* grouping from an
/// already-materialized answer frame instead of the base KG — the
/// optimization of the works the dissertation surveys in §3.3 ([16], [51]:
/// "use the materialized result of an RDF analytical query to compute the
/// answer to a subsequent query"), and what makes OLAP roll-up cheap.
///
/// `keep_columns` selects the grouping columns that remain; rows sharing
/// those values are merged; the `agg_column` values are re-aggregated with
/// `op`. Only *distributive* aggregates are valid here: SUM, COUNT (sums of
/// partial counts), MIN, MAX. AVG is algebraic — use RollUpAverage with the
/// (sum, count) pair.
///
/// `threads` > 1 scans the answer in parallel morsels with per-thread
/// partial accumulator tables, merged with the same distributive logic
/// (sum of sums, min of mins, ...). Integer-valued cells merge exactly;
/// for fractional doubles the partial-sum association may differ from the
/// serial left fold in the last ulp.
/// `ctx` (optional) is the deadline/cancellation context: the merge scan
/// checks it per morsel and unwinds to DeadlineExceeded/Cancelled.
Result<AnswerFrame> RollUpAnswer(const AnswerFrame& answer,
                                 const std::vector<std::string>& keep_columns,
                                 const std::string& agg_column,
                                 hifun::AggOp op, int threads = 1,
                                 const QueryContext& ctx = QueryContext());

/// Rolls up an average from its (sum, count) decomposition: the result has
/// the kept grouping columns plus columns "sum", "count", "avg".
/// `threads` as in RollUpAnswer.
Result<AnswerFrame> RollUpAverage(const AnswerFrame& answer,
                                  const std::vector<std::string>& keep_columns,
                                  const std::string& sum_column,
                                  const std::string& count_column,
                                  int threads = 1,
                                  const QueryContext& ctx = QueryContext());

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_ROLLUP_CACHE_H_
