#ifndef RDFA_ANALYTICS_SESSION_H_
#define RDFA_ANALYTICS_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "common/query_context.h"
#include "common/status.h"
#include "fs/session.h"
#include "hifun/query.h"
#include "sparql/bgp.h"
#include "sparql/exec_stats.h"

namespace rdfa::analytics {

/// One grouping choice made with the G button: a (forward) property path
/// from the focus, optionally wrapped in a derived-attribute function
/// (e.g. YEAR of releaseDate — the transform button of §5.1).
struct GroupingSpec {
  std::vector<std::string> path;  ///< property IRIs, length >= 1
  std::string derived_function;   ///< "" or upper-case fn name (YEAR, ...)
};

/// The measure chosen with the Σ button plus the aggregate functions to
/// apply (several may be ticked at once, Fig 6.2).
struct MeasureSpec {
  std::vector<std::string> path;  ///< empty path = COUNT of the items
  std::vector<hifun::AggOp> ops;
};

/// The paper's core contribution (§5): a faceted-search session *extended
/// with analytics actions*. The FS part scopes the analysis context (the
/// extension E = ctx.Ext); the G/Σ buttons pick the grouping and measuring
/// functions; executing synthesizes the HIFUN query of §5.1, translates it
/// to SPARQL (§4.2) and fills the Answer Frame. Reloading the AF as a new
/// dataset yields HAVING and unbounded nesting (§5.3.3).
class AnalyticsSession {
 public:
  /// `graph` must outlive the session.
  explicit AnalyticsSession(rdf::Graph* graph,
                            fs::EvalMode mode = fs::EvalMode::kNative);

  /// The embedded faceted-search session (clicks, facets, Back, ...).
  fs::Session& fs() { return fs_; }
  const fs::Session& fs() const { return fs_; }

  /// Morsel-parallelism budget for Execute/ExecuteDirect (<=1 = serial;
  /// parallel answers are byte-identical to serial).
  void set_thread_count(int threads) {
    thread_count_ = threads < 1 ? 1 : threads;
  }
  int thread_count() const { return thread_count_; }

  /// Join-strategy override for Execute/ExecuteDirect (default kAdaptive;
  /// see Executor::set_join_strategy).
  void set_join_strategy(sparql::JoinStrategy strategy) {
    join_strategy_ = strategy;
  }
  sparql::JoinStrategy join_strategy() const { return join_strategy_; }

  /// Planner-v2 DP join ordering (default off; see Executor::set_use_dp).
  void set_use_dp(bool on) { use_dp_ = on; }
  bool use_dp() const { return use_dp_; }

  /// Deadline/cancellation context for Execute/ExecuteDirect. The default
  /// context never trips; install one with a deadline (or cancel it from
  /// another thread) to bound the next executions. Checked at morsel and
  /// stage boundaries; a trip unwinds to DeadlineExceeded/Cancelled with
  /// the partial ExecStats preserved in last_exec_stats().
  void set_query_context(QueryContext ctx) { ctx_ = std::move(ctx); }
  const QueryContext& query_context() const { return ctx_; }

  /// Execution statistics of the most recent Execute() (SPARQL path).
  const sparql::ExecStats& last_exec_stats() const { return exec_stats_; }

  // --- the analytics buttons -------------------------------------------
  /// G button on the facet reached by `spec.path` (§5.2.2: gE' = gE + f).
  Status ClickGroupBy(GroupingSpec spec);
  /// Removes a previously selected grouping (the "remove some of them"
  /// dialog of §5.1 GUI extensions).
  Status RemoveGroupBy(size_t index);
  /// Σ button: chooses the measure and its aggregate function(s).
  Status ClickAggregate(MeasureSpec spec);
  /// Restriction on the final answer (HAVING, §4.2.3), applied to the
  /// `op_index`-th aggregate.
  void SetResultRestriction(std::string op, double value, size_t op_index = 0);
  void ClearAnalytics();

  const std::vector<GroupingSpec>& groupings() const { return groupings_; }
  const std::optional<MeasureSpec>& measure() const { return measure_; }

  // --- query synthesis and execution -------------------------------------
  /// Synthesizes the HIFUN query of the current state: the FS intention
  /// contributes the root class and the restrictions; the button choices
  /// contribute gE, mE and opE.
  Result<hifun::Query> BuildHifunQuery() const;

  /// Translates the synthesized query to SPARQL (§4.2.5).
  Result<std::string> BuildSparql() const;

  /// Executes via the SPARQL pipeline and fills the Answer Frame.
  Result<AnswerFrame> Execute();

  /// Executes via the direct HIFUN evaluator (reference semantics; used by
  /// the equivalence tests and the ablation bench).
  Result<AnswerFrame> ExecuteDirect() const;

  /// §5.3.3: loads the current answer into `*af_graph` as a fresh dataset
  /// and returns a new session over it, whose further restrictions express
  /// HAVING / nested analytic queries. `af_graph` must outlive the returned
  /// session.
  Result<std::unique_ptr<AnalyticsSession>> ExploreAnswer(
      rdf::Graph* af_graph) const;

  /// The most recent Execute/ExecuteDirect answer.
  const AnswerFrame& answer() const { return answer_; }

  /// The graph this session analyzes (outlives the session by contract).
  rdf::Graph* graph() const { return graph_; }

  /// Installs an externally produced answer — e.g. a cached
  /// materialization — as the current Answer Frame, as if Execute() had
  /// just returned it. Exec stats are zeroed: nothing executed.
  void InstallAnswer(AnswerFrame answer) {
    answer_ = std::move(answer);
    exec_stats_ = sparql::ExecStats{};
  }

  /// §5.1 "Special cases": the transform button next to a facet. Applies a
  /// feature-creation operator over the current root class to repair a
  /// non-functional / partial attribute (or derive a new one) and returns
  /// the minted feature IRI, ready for ClickGroupBy/ClickAggregate.
  /// `path` is 1 property for kValue/kExists/kCount, 2 for kPathMaxFreq
  /// and kPathCount.
  enum class TransformKind { kValue, kExists, kCount, kPathCount,
                             kPathMaxFreq };
  Result<std::string> ApplyTransform(TransformKind kind,
                                     const std::vector<std::string>& path,
                                     const std::string& feature_name);

 private:
  rdf::Graph* graph_;
  fs::Session fs_;
  std::vector<GroupingSpec> groupings_;
  std::optional<MeasureSpec> measure_;
  std::optional<hifun::ResultRestriction> result_restriction_;
  AnswerFrame answer_;
  int thread_count_ = 1;
  sparql::JoinStrategy join_strategy_ = sparql::JoinStrategy::kAdaptive;
  bool use_dp_ = false;
  QueryContext ctx_;
  sparql::ExecStats exec_stats_;
};

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_SESSION_H_
