#include "analytics/fco.h"

#include <map>
#include <set>
#include <vector>

#include "rdf/namespaces.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace rdfa::analytics {

using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

namespace {

/// The entities of `root_class` (every subject when empty).
std::vector<TermId> Entities(const rdf::Graph& graph,
                             const std::string& root_class) {
  std::set<TermId> out;
  if (root_class.empty()) {
    for (const rdf::TripleId& t : graph.triples()) out.insert(t.s);
  } else {
    TermId type = graph.terms().FindIri(rdf::rdfns::kType);
    TermId cls = graph.terms().FindIri(root_class);
    if (type != kNoTermId && cls != kNoTermId) {
      graph.ForEachMatch(kNoTermId, type, cls,
                         [&](const rdf::TripleId& t) { out.insert(t.s); });
    }
  }
  return {out.begin(), out.end()};
}

Result<TermId> RequireProperty(const rdf::Graph& graph,
                               const std::string& p) {
  TermId id = graph.terms().FindIri(p);
  if (id == kNoTermId) {
    return Status::NotFound("property <" + p + "> does not occur");
  }
  return id;
}

}  // namespace

Result<size_t> FcoValue(rdf::Graph* graph, const std::string& root_class,
                        const std::string& p, const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId pid, RequireProperty(*graph, p));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    std::vector<rdf::TripleId> vals = graph->Match(e, pid, kNoTermId);
    if (vals.size() != 1) continue;  // missing or multi-valued: skip
    if (graph->Add(graph->terms().Get(e), feature,
                   graph->terms().Get(vals[0].o))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoExists(rdf::Graph* graph, const std::string& root_class,
                         const std::string& p,
                         const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId pid, RequireProperty(*graph, p));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    bool exists = graph->CountMatch(e, pid, kNoTermId) > 0 ||
                  graph->CountMatch(kNoTermId, pid, e) > 0;
    if (graph->Add(graph->terms().Get(e), feature,
                   Term::Integer(exists ? 1 : 0))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoCount(rdf::Graph* graph, const std::string& root_class,
                        const std::string& p, const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId pid, RequireProperty(*graph, p));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    size_t n = graph->CountMatch(e, pid, kNoTermId);
    if (graph->Add(graph->terms().Get(e), feature,
                   Term::Integer(static_cast<int64_t>(n)))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoValuesAsFeatures(rdf::Graph* graph,
                                   const std::string& root_class,
                                   const std::string& p,
                                   const std::string& feature_prefix) {
  RDFA_ASSIGN_OR_RETURN(TermId pid, RequireProperty(*graph, p));
  // Collect all values of p first.
  std::set<TermId> values;
  graph->ForEachMatch(kNoTermId, pid, kNoTermId,
                      [&](const rdf::TripleId& t) { values.insert(t.o); });
  auto local = [](const std::string& iri) {
    size_t pos = iri.find_last_of("#/");
    return pos == std::string::npos ? iri : iri.substr(pos + 1);
  };
  size_t added = 0;
  std::vector<TermId> entities = Entities(*graph, root_class);
  for (TermId v : values) {
    const Term& vt = graph->terms().Get(v);
    std::string name =
        vt.is_literal() ? vt.lexical() : local(vt.lexical());
    Term feature = Term::Iri(feature_prefix + name);
    for (TermId e : entities) {
      bool has = graph->Contains(e, pid, v);
      if (graph->Add(graph->terms().Get(e), feature,
                     Term::Integer(has ? 1 : 0))) {
        ++added;
      }
    }
  }
  return added;
}

Result<size_t> FcoDegree(rdf::Graph* graph, const std::string& root_class,
                         const std::string& feature_iri) {
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    size_t n = graph->CountMatch(e, kNoTermId, kNoTermId) +
               graph->CountMatch(kNoTermId, kNoTermId, e);
    if (graph->Add(graph->terms().Get(e), feature,
                   Term::Integer(static_cast<int64_t>(n)))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoAverageDegree(rdf::Graph* graph,
                                const std::string& root_class,
                                const std::string& feature_iri) {
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    std::set<TermId> c;
    graph->ForEachMatch(e, kNoTermId, kNoTermId,
                        [&](const rdf::TripleId& t) { c.insert(t.o); });
    if (c.empty()) continue;
    size_t triples = 0;
    for (TermId o : c) {
      triples += graph->CountMatch(o, kNoTermId, kNoTermId) +
                 graph->CountMatch(kNoTermId, kNoTermId, o);
    }
    double avg = static_cast<double>(triples) / static_cast<double>(c.size());
    if (graph->Add(graph->terms().Get(e), feature, Term::Double(avg))) {
      ++added;
    }
  }
  return added;
}

namespace {

/// Distinct path endpoints {o2 | (e,p1,o1),(o1,p2,o2)}.
std::set<TermId> PathEnds(const rdf::Graph& graph, TermId e, TermId p1,
                          TermId p2) {
  std::set<TermId> ends;
  graph.ForEachMatch(e, p1, kNoTermId, [&](const rdf::TripleId& t1) {
    graph.ForEachMatch(t1.o, p2, kNoTermId,
                       [&](const rdf::TripleId& t2) { ends.insert(t2.o); });
  });
  return ends;
}

}  // namespace

Result<size_t> FcoPathExists(rdf::Graph* graph, const std::string& root_class,
                             const std::string& p1, const std::string& p2,
                             const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId p1id, RequireProperty(*graph, p1));
  RDFA_ASSIGN_OR_RETURN(TermId p2id, RequireProperty(*graph, p2));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    bool exists = !PathEnds(*graph, e, p1id, p2id).empty();
    if (graph->Add(graph->terms().Get(e), feature,
                   Term::Integer(exists ? 1 : 0))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoPathCount(rdf::Graph* graph, const std::string& root_class,
                            const std::string& p1, const std::string& p2,
                            const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId p1id, RequireProperty(*graph, p1));
  RDFA_ASSIGN_OR_RETURN(TermId p2id, RequireProperty(*graph, p2));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    size_t n = PathEnds(*graph, e, p1id, p2id).size();
    if (graph->Add(graph->terms().Get(e), feature,
                   Term::Integer(static_cast<int64_t>(n)))) {
      ++added;
    }
  }
  return added;
}

Result<size_t> FcoPathValueMaxFreq(rdf::Graph* graph,
                                   const std::string& root_class,
                                   const std::string& p1,
                                   const std::string& p2,
                                   const std::string& feature_iri) {
  RDFA_ASSIGN_OR_RETURN(TermId p1id, RequireProperty(*graph, p1));
  RDFA_ASSIGN_OR_RETURN(TermId p2id, RequireProperty(*graph, p2));
  Term feature = Term::Iri(feature_iri);
  size_t added = 0;
  for (TermId e : Entities(*graph, root_class)) {
    // Count o2 frequencies with multiplicity (not distinct).
    std::map<TermId, size_t> freq;
    graph->ForEachMatch(e, p1id, kNoTermId, [&](const rdf::TripleId& t1) {
      graph->ForEachMatch(t1.o, p2id, kNoTermId,
                          [&](const rdf::TripleId& t2) { freq[t2.o] += 1; });
    });
    if (freq.empty()) continue;
    TermId best = freq.begin()->first;
    size_t best_n = freq.begin()->second;
    for (const auto& [v, n] : freq) {
      if (n > best_n) {
        best = v;
        best_n = n;
      }
    }
    if (graph->Add(graph->terms().Get(e), feature, graph->terms().Get(best))) {
      ++added;
    }
  }
  return added;
}

namespace {

/// Parses and materializes a CONSTRUCT query back into the same graph.
Result<size_t> RunConstruct(rdf::Graph* graph, const std::string& query) {
  RDFA_ASSIGN_OR_RETURN(sparql::ParsedQuery parsed,
                        sparql::ParseQuery(query));
  if (parsed.form != sparql::ParsedQuery::Form::kConstruct) {
    return Status::Internal("expected a CONSTRUCT query");
  }
  sparql::Executor exec(graph);
  return exec.Construct(parsed.construct, graph);
}

}  // namespace

Result<size_t> FcoValueViaConstruct(rdf::Graph* graph,
                                    const std::string& root_class,
                                    const std::string& p,
                                    const std::string& feature_iri) {
  std::string type_pattern =
      root_class.empty()
          ? ""
          : "?e <" + std::string(rdf::rdfns::kType) + "> <" + root_class +
                "> . ";
  std::string query =
      "CONSTRUCT { ?e <" + feature_iri + "> ?v . }\n"
      "WHERE {\n"
      "  ?e <" + p + "> ?v .\n"
      "  { SELECT ?e WHERE { " + type_pattern + "?e <" + p + "> ?x . }\n"
      "    GROUP BY ?e HAVING (COUNT(?x) = 1) }\n"
      "}";
  return RunConstruct(graph, query);
}

Result<size_t> FcoPathCountViaConstruct(rdf::Graph* graph,
                                        const std::string& root_class,
                                        const std::string& p1,
                                        const std::string& p2,
                                        const std::string& feature_iri) {
  std::string type_pattern =
      root_class.empty()
          ? ""
          : "?e <" + std::string(rdf::rdfns::kType) + "> <" + root_class +
                "> . ";
  std::string query =
      "CONSTRUCT { ?e <" + feature_iri + "> ?n . }\n"
      "WHERE {\n"
      "  { SELECT ?e (COUNT(DISTINCT ?o2) AS ?n) WHERE { " + type_pattern +
      "?e <" + p1 + "> ?o1 . ?o1 <" + p2 + "> ?o2 . } GROUP BY ?e }\n"
      "}";
  return RunConstruct(graph, query);
}

}  // namespace rdfa::analytics
