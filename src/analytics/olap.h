#ifndef RDFA_ANALYTICS_OLAP_H_
#define RDFA_ANALYTICS_OLAP_H_

#include <string>
#include <vector>

#include "analytics/session.h"

namespace rdfa::analytics {

class RollupCache;

/// One granularity level of a dimension: an attribute path from the focus,
/// optionally a derived function (e.g. day -> MONTH(date) -> YEAR(date), or
/// branch -> city -> country by extending the property path).
struct DimensionLevel {
  std::string name;               ///< display name, e.g. "month"
  std::vector<std::string> path;  ///< property IRIs
  std::string derived_function;   ///< "" or YEAR/MONTH/...
};

/// A cube dimension with its level hierarchy, finest level first.
struct Dimension {
  std::string name;
  std::vector<DimensionLevel> levels;
};

/// The OLAP face of the interaction model (dissertation §7.2, Figs
/// 7.1/7.2): roll-up, drill-down, slice, dice and pivot expressed through
/// the same G/Σ/filter actions the GUI offers. The view owns which
/// dimensions are active and at which level; Materialize() programs the
/// underlying AnalyticsSession and executes.
class OlapView {
 public:
  /// `session` must outlive the view.
  OlapView(AnalyticsSession* session, std::vector<Dimension> dimensions,
           MeasureSpec measure);

  /// Moves `dim` one level coarser (roll-up) / finer (drill-down).
  Status RollUp(const std::string& dim);
  Status DrillDown(const std::string& dim);
  /// Sets `dim` to an explicit level index.
  Status SetLevel(const std::string& dim, size_t level);

  /// Slice: fixes `dim` (at its current level path) to `value` — the cell
  /// filter enters the FS state — and removes the dimension from the
  /// grouping.
  Status Slice(const std::string& dim, const rdf::Term& value);

  /// Dice: keeps `dim` grouped but restricts its numeric values to
  /// [min, max].
  Status Dice(const std::string& dim, std::optional<double> min,
              std::optional<double> max);

  /// Pivot: rotates the dimension order (last becomes first).
  void Pivot();

  /// Current level index of `dim`; -1 if sliced away or unknown.
  int LevelOf(const std::string& dim) const;

  /// Morsel-parallelism budget for Materialize (forwarded to the session's
  /// executor; parallel cubes are byte-identical to serial ones).
  void set_thread_count(int threads);

  /// Deadline/cancellation context for Materialize (forwarded to the
  /// session; a trip unwinds to DeadlineExceeded/Cancelled).
  void set_query_context(QueryContext ctx);

  /// Execution statistics of the most recent Materialize().
  const sparql::ExecStats& last_exec_stats() const;

  /// Generation-aware materialization reuse: with a cache installed,
  /// Materialize() keys the cube's SPARQL fingerprint plus the graph
  /// generation into it, so revisiting a level (roll-up then drill-down
  /// back, repeated slices) returns the memoized frame — and any graph
  /// mutation invalidates lazily, never serving a stale cube. Null (the
  /// default) disables reuse. `cache` must outlive the view.
  void set_cache(RollupCache* cache) { cache_ = cache; }

  /// Programs the session (groupings per active dimension at its current
  /// level, plus the measure) and executes the analytic query.
  Result<AnswerFrame> Materialize();

 private:
  struct DimState {
    Dimension dim;
    size_t level = 0;
    bool active = true;
  };
  DimState* FindDim(const std::string& name);

  AnalyticsSession* session_;
  std::vector<DimState> dims_;
  MeasureSpec measure_;
  RollupCache* cache_ = nullptr;
};

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_OLAP_H_
