#include "analytics/answer_frame.h"

#include "rdf/namespaces.h"

namespace rdfa::analytics {

using rdf::Term;

Result<size_t> AnswerFrame::LoadAsDataset(rdf::Graph* out) const {
  if (table_.num_columns() == 0) {
    return Status::InvalidArgument("empty answer frame");
  }
  Term row_class = Term::Iri(RowClassIri());
  Term type = Term::Iri(rdf::rdfns::kType);
  size_t added = 0;
  for (size_t r = 0; r < table_.num_rows(); ++r) {
    Term row = Term::Iri(std::string(kAfNamespace) + "t" + std::to_string(r + 1));
    if (out->Add(row, type, row_class)) ++added;
    for (size_t c = 0; c < table_.num_columns(); ++c) {
      const Term& cell = table_.at(r, c);
      if (sparql::ResultTable::IsUnbound(cell)) continue;
      Term attr = Term::Iri(ColumnIri(table_.columns()[c]));
      if (out->Add(row, attr, cell)) ++added;
    }
  }
  return added;
}

Result<AnswerFrame> AnswerFrame::ProjectColumns(
    const std::vector<std::string>& columns) const {
  std::vector<int> indexes;
  indexes.reserve(columns.size());
  for (const std::string& name : columns) {
    int idx = table_.ColumnIndex(name);
    if (idx < 0) return Status::NotFound("no column " + name);
    indexes.push_back(idx);
  }
  sparql::ResultTable projected(columns);
  for (size_t r = 0; r < table_.num_rows(); ++r) {
    std::vector<rdf::Term> row;
    row.reserve(indexes.size());
    for (int idx : indexes) row.push_back(table_.at(r, idx));
    projected.AddRow(std::move(row));
  }
  return AnswerFrame(std::move(projected));
}

}  // namespace rdfa::analytics
