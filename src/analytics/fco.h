#ifndef RDFA_ANALYTICS_FCO_H_
#define RDFA_ANALYTICS_FCO_H_

#include <string>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::analytics {

/// Linked-Data-based Feature Creation Operators (dissertation Table 4.1,
/// §4.1.2 / §4.2.6): transformations that materialize a *functional*
/// feature property onto the entities of `root_class` so that HIFUN's
/// prerequisites hold on data with missing values or multi-valued
/// properties. Each operator adds triples `(e, feature_iri, value)` to the
/// graph and returns how many were added.
///
/// `root_class` empty selects every subject. Feature IRIs are caller-chosen
/// (typically under the dataset's namespace).

/// FCO1 `p.value`: copies the single value of `p`; entities where `p` is
/// multi-valued are skipped (use FCO4 or FCO9 for those).
Result<size_t> FcoValue(rdf::Graph* graph, const std::string& root_class,
                        const std::string& p, const std::string& feature_iri);

/// FCO2 `p.exists`: boolean — 1 iff the entity has `p` in either direction.
Result<size_t> FcoExists(rdf::Graph* graph, const std::string& root_class,
                         const std::string& p, const std::string& feature_iri);

/// FCO3 `p.count`: integer — number of `p` values of the entity.
Result<size_t> FcoCount(rdf::Graph* graph, const std::string& root_class,
                        const std::string& p, const std::string& feature_iri);

/// FCO4 `p.values.AsFeatures`: one boolean feature per distinct value v of
/// `p`, named `<feature_prefix><local-name-of-v>`.
Result<size_t> FcoValuesAsFeatures(rdf::Graph* graph,
                                   const std::string& root_class,
                                   const std::string& p,
                                   const std::string& feature_prefix);

/// FCO5 `degree`: number of triples mentioning the entity as subject or
/// object.
Result<size_t> FcoDegree(rdf::Graph* graph, const std::string& root_class,
                         const std::string& feature_iri);

/// FCO6 `average degree`: |triples(C)| / |C| over the entity's objects C.
Result<size_t> FcoAverageDegree(rdf::Graph* graph,
                                const std::string& root_class,
                                const std::string& feature_iri);

/// FCO7 `p1.p2.exists`: boolean — 1 iff some o2 with (e,p1,o1),(o1,p2,o2).
Result<size_t> FcoPathExists(rdf::Graph* graph, const std::string& root_class,
                             const std::string& p1, const std::string& p2,
                             const std::string& feature_iri);

/// FCO8 `p1.p2.count`: number of such o2 (distinct).
Result<size_t> FcoPathCount(rdf::Graph* graph, const std::string& root_class,
                            const std::string& p1, const std::string& p2,
                            const std::string& feature_iri);

/// FCO9 `p1.p2.value.maxFreq`: the most frequent o2 at the end of the path
/// (ties broken by term order) — turns a multi-valued path into a
/// functional feature.
Result<size_t> FcoPathValueMaxFreq(rdf::Graph* graph,
                                   const std::string& root_class,
                                   const std::string& p1,
                                   const std::string& p2,
                                   const std::string& feature_iri);

/// §4.1.2 also allows the transformations to be "embedded in a SPARQL query
/// as a sub-query" and materialized with CONSTRUCT. These variants build
/// the CONSTRUCT query text and run it through the engine — same feature
/// triples as the direct operators, derived the paper's second way.

/// FCO1 via CONSTRUCT: a HAVING(COUNT = 1) subquery keeps only entities
/// where `p` is functional, then the value is copied to `feature_iri`.
/// Equivalent to FcoValue.
Result<size_t> FcoValueViaConstruct(rdf::Graph* graph,
                                    const std::string& root_class,
                                    const std::string& p,
                                    const std::string& feature_iri);

/// FCO8 via CONSTRUCT: COUNT(DISTINCT path ends) per entity. Unlike
/// FcoPathCount, entities with no path get *no* feature triple (SPARQL
/// cannot emit a constant for non-matching entities); counts > 0 agree.
Result<size_t> FcoPathCountViaConstruct(rdf::Graph* graph,
                                        const std::string& root_class,
                                        const std::string& p1,
                                        const std::string& p2,
                                        const std::string& feature_iri);

}  // namespace rdfa::analytics

#endif  // RDFA_ANALYTICS_FCO_H_
