#include "hifun/attr_expr.h"

namespace rdfa::hifun {

AttrExprPtr AttrExpr::Identity() {
  auto e = std::make_shared<AttrExpr>();
  e->kind = Kind::kIdentity;
  return e;
}

AttrExprPtr AttrExpr::Property(std::string iri) {
  auto e = std::make_shared<AttrExpr>();
  e->kind = Kind::kProperty;
  e->property = std::move(iri);
  return e;
}

AttrExprPtr AttrExpr::Compose(std::vector<AttrExprPtr> in_application_order) {
  if (in_application_order.size() == 1) return in_application_order[0];
  auto e = std::make_shared<AttrExpr>();
  e->kind = Kind::kCompose;
  e->args = std::move(in_application_order);
  return e;
}

AttrExprPtr AttrExpr::Pair(std::vector<AttrExprPtr> components) {
  if (components.size() == 1) return components[0];
  auto e = std::make_shared<AttrExpr>();
  e->kind = Kind::kPair;
  e->args = std::move(components);
  return e;
}

AttrExprPtr AttrExpr::Derived(std::string function, AttrExprPtr arg) {
  auto e = std::make_shared<AttrExpr>();
  e->kind = Kind::kDerived;
  e->function = std::move(function);
  e->args.push_back(std::move(arg));
  return e;
}

size_t AttrExpr::Arity() const {
  if (kind != Kind::kPair) return 1;
  size_t n = 0;
  for (const AttrExprPtr& a : args) n += a->Arity();
  return n;
}

namespace {
std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}
}  // namespace

std::string AttrExpr::ToString() const {
  switch (kind) {
    case Kind::kIdentity:
      return "ID";
    case Kind::kProperty:
      return LocalName(property);
    case Kind::kCompose: {
      // Paper order: outermost first (f_k ∘ … ∘ f_1).
      std::string out;
      for (size_t i = args.size(); i-- > 0;) {
        if (!out.empty()) out += " o ";
        out += args[i]->ToString();
      }
      return out;
    }
    case Kind::kPair: {
      std::string out = "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += " x ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kDerived:
      return function + "(" + args[0]->ToString() + ")";
  }
  return "";
}

std::string Restriction::ToString() const {
  std::string out;
  for (const std::string& p : path) {
    if (!out.empty()) out += ".";
    out += LocalName(p);
  }
  if (!derived_function.empty()) {
    out = derived_function + "(" + out + ")";
  }
  if (!out.empty()) out += " ";
  out += op + " " + value.ToNTriples();
  return out;
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "SUM";
    case AggOp::kAvg: return "AVG";
    case AggOp::kCount: return "COUNT";
    case AggOp::kMin: return "MIN";
    case AggOp::kMax: return "MAX";
  }
  return "SUM";
}

}  // namespace rdfa::hifun
