#include "hifun/query.h"

#include "common/string_util.h"

namespace rdfa::hifun {

std::string Query::ToString() const {
  std::string out = "(";
  out += grouping == nullptr ? "eps" : grouping->ToString();
  for (const Restriction& r : group_restrictions) {
    out += " / " + r.ToString();
  }
  out += ", ";
  out += measuring == nullptr ? "ID" : measuring->ToString();
  for (const Restriction& r : measure_restrictions) {
    out += " / " + r.ToString();
  }
  out += ", ";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += "+";
    out += AggOpName(ops[i]);
  }
  if (result_restriction.has_value()) {
    out += " / " + result_restriction->op + " " +
           FormatNumber(result_restriction->value);
  }
  out += ")";
  if (!root_class.empty()) {
    size_t pos = root_class.find_last_of("#/");
    out += " over " +
           (pos == std::string::npos ? root_class : root_class.substr(pos + 1));
  }
  return out;
}

}  // namespace rdfa::hifun
