#ifndef RDFA_HIFUN_EVALUATOR_H_
#define RDFA_HIFUN_EVALUATOR_H_

#include "common/query_context.h"
#include "common/status.h"
#include "hifun/query.h"
#include "rdf/graph.h"
#include "sparql/result_table.h"

namespace rdfa::hifun {

/// Direct (SPARQL-free) evaluation of HIFUN queries following the
/// three-step semantics of §2.5 — grouping, measuring, reduction. Serves as
/// the reference implementation that the HIFUN→SPARQL translation is tested
/// for equivalence against (Proposition 2, soundness).
///
/// Restriction semantics (documented in DESIGN.md): a Restriction on the
/// grouping/measuring side is a per-item condition. With an empty path it
/// constrains the attribute's own value (e.g. inQuantity >= 2); with a
/// non-empty path it constrains the composition path walked from the item
/// (e.g. manufacturer.origin = ex:US).
class Evaluator {
 public:
  /// `threads` is the morsel-parallelism budget for the grouping/measuring
  /// pass (<=1 = serial). Parallel results are byte-identical to serial:
  /// items are split into contiguous morsels whose per-thread partial group
  /// tables are merged back in item order.
  explicit Evaluator(const rdf::Graph& graph, int threads = 1)
      : graph_(graph), threads_(threads < 1 ? 1 : threads) {}

  void set_thread_count(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int thread_count() const { return threads_; }

  /// Evaluates `query`. Returns Precondition when a traversed attribute is
  /// multi-valued on some item (HIFUN prerequisite §4.1.1 — apply an FCO
  /// transformation first). Items with missing values are skipped, matching
  /// the BGP join semantics of the SPARQL translation.
  Result<sparql::ResultTable> Evaluate(const Query& query) const {
    return Evaluate(query, QueryContext());
  }

  /// As above with a deadline/cancellation context, checked per item morsel
  /// in the group-measure pass and per group in the reduction; a trip
  /// unwinds to DeadlineExceeded/Cancelled.
  Result<sparql::ResultTable> Evaluate(const Query& query,
                                       const QueryContext& ctx) const;

 private:
  const rdf::Graph& graph_;
  int threads_ = 1;
};

}  // namespace rdfa::hifun

#endif  // RDFA_HIFUN_EVALUATOR_H_
