#include "hifun/hifun_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace rdfa::hifun {

namespace {

using rdf::Term;

struct Tok {
  enum Kind { kName, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
};

Result<std::vector<Tok>> Lex(std::string_view text) {
  std::vector<Tok> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      std::string s;
      while (j < text.size() && text[j] != '"') s += text[j++];
      if (j >= text.size()) {
        return Status::ParseError("hifun: unterminated string");
      }
      out.push_back({Tok::kString, s});
      i = j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i + 1;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) ||
              text[j] == '.')) {
        ++j;
      }
      out.push_back({Tok::kNumber, std::string(text.substr(i, j - i))});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_' || text[j] == '-' || text[j] == ':')) {
        ++j;
      }
      out.push_back({Tok::kName, std::string(text.substr(i, j - i))});
      i = j;
      continue;
    }
    // Multi-char comparison operators.
    if ((c == '<' || c == '>' || c == '!' || c == '=') &&
        i + 1 < text.size() && text[i + 1] == '=') {
      out.push_back({Tok::kPunct, std::string(text.substr(i, 2))});
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),/+.=<>x";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({Tok::kPunct, std::string(1, c)});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("hifun: unexpected character '") +
                              c + "'");
  }
  out.push_back({Tok::kEnd, ""});
  return out;
}

const char* const kDerivedFns[] = {"YEAR", "MONTH",  "DAY",  "HOURS",
                                   "STR",  "UCASE",  "LCASE"};

class HifunParser {
 public:
  HifunParser(std::vector<Tok> toks, const rdf::PrefixMap& prefixes,
              std::string default_ns)
      : toks_(std::move(toks)),
        prefixes_(prefixes),
        default_ns_(std::move(default_ns)) {}

  Result<Query> Parse() {
    Query q;
    RDFA_RETURN_NOT_OK(Expect("("));
    // gpart
    if (PeekName("eps")) {
      Consume();
    } else {
      RDFA_ASSIGN_OR_RETURN(q.grouping, ParseAttr());
      while (PeekPunct("/")) {
        Consume();
        RDFA_ASSIGN_OR_RETURN(Restriction r, ParseRestriction());
        q.group_restrictions.push_back(std::move(r));
      }
    }
    RDFA_RETURN_NOT_OK(Expect(","));
    // mpart
    if (PeekName("ID")) {
      Consume();
      q.measuring = AttrExpr::Identity();
    } else {
      RDFA_ASSIGN_OR_RETURN(q.measuring, ParseAttr());
    }
    while (PeekPunct("/")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(Restriction r, ParseRestriction());
      q.measure_restrictions.push_back(std::move(r));
    }
    RDFA_RETURN_NOT_OK(Expect(","));
    // ops
    while (true) {
      if (Peek().kind != Tok::kName) return Err("expected aggregate op");
      RDFA_ASSIGN_OR_RETURN(AggOp op, ParseOp(Consume().text));
      q.ops.push_back(op);
      if (PeekPunct("+")) {
        Consume();
        continue;
      }
      break;
    }
    if (PeekPunct("/")) {
      Consume();
      ResultRestriction rr;
      if (Peek().kind != Tok::kPunct) return Err("expected comparison op");
      rr.op = Consume().text;
      if (Peek().kind != Tok::kNumber) return Err("expected number");
      rr.value = std::strtod(Consume().text.c_str(), nullptr);
      q.result_restriction = rr;
    }
    RDFA_RETURN_NOT_OK(Expect(")"));
    if (PeekName("over")) {
      Consume();
      if (Peek().kind != Tok::kName) return Err("expected class after 'over'");
      RDFA_ASSIGN_OR_RETURN(q.root_class, ResolveName(Consume().text));
    }
    if (Peek().kind != Tok::kEnd) return Err("trailing input");
    return q;
  }

 private:
  const Tok& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Tok Consume() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool PeekPunct(std::string_view p) const {
    return Peek().kind == Tok::kPunct && Peek().text == p;
  }
  bool PeekName(std::string_view n) const {
    return Peek().kind == Tok::kName && Peek().text == n;
  }
  Status Expect(std::string_view p) {
    if (!PeekPunct(p)) {
      return Err("expected '" + std::string(p) + "', got '" + Peek().text +
                 "'");
    }
    Consume();
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("hifun: " + msg);
  }

  Result<std::string> ResolveName(const std::string& name) {
    if (name.find(':') != std::string::npos) {
      auto iri = prefixes_.Expand(name);
      if (!iri.has_value()) return Err("unknown prefix in '" + name + "'");
      return *iri;
    }
    return default_ns_ + name;
  }

  Result<AggOp> ParseOp(const std::string& name) {
    std::string u = ToUpperAscii(name);
    if (u == "SUM") return AggOp::kSum;
    if (u == "AVG") return AggOp::kAvg;
    if (u == "COUNT") return AggOp::kCount;
    if (u == "MIN") return AggOp::kMin;
    if (u == "MAX") return AggOp::kMax;
    return Err("unknown aggregate op '" + name + "'");
  }

  bool IsDerivedFn(const std::string& name) const {
    std::string u = ToUpperAscii(name);
    for (const char* f : kDerivedFns) {
      if (u == f) return true;
    }
    return false;
  }

  // attr := comp ('x' comp)*
  Result<AttrExprPtr> ParseAttr() {
    std::vector<AttrExprPtr> components;
    RDFA_ASSIGN_OR_RETURN(AttrExprPtr first, ParseComp());
    components.push_back(std::move(first));
    while (PeekPunct("x") || PeekName("x")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(AttrExprPtr next, ParseComp());
      components.push_back(std::move(next));
    }
    return AttrExpr::Pair(std::move(components));
  }

  // comp := atom ('o' atom)*  -- written outermost-first.
  Result<AttrExprPtr> ParseComp() {
    std::vector<AttrExprPtr> written;
    RDFA_ASSIGN_OR_RETURN(AttrExprPtr first, ParseAtom());
    written.push_back(std::move(first));
    while (PeekName("o")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(AttrExprPtr next, ParseAtom());
      written.push_back(std::move(next));
    }
    // "f2 o f1" applies f1 first: reverse into application order.
    std::vector<AttrExprPtr> application(written.rbegin(), written.rend());
    return AttrExpr::Compose(std::move(application));
  }

  Result<AttrExprPtr> ParseAtom() {
    if (PeekPunct("(")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(AttrExprPtr inner, ParseAttr());
      RDFA_RETURN_NOT_OK(Expect(")"));
      return inner;
    }
    if (Peek().kind != Tok::kName) return Err("expected attribute name");
    std::string name = Consume().text;
    if (IsDerivedFn(name) && PeekPunct("(")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(AttrExprPtr arg, ParseAttr());
      RDFA_RETURN_NOT_OK(Expect(")"));
      return AttrExpr::Derived(ToUpperAscii(name), std::move(arg));
    }
    RDFA_ASSIGN_OR_RETURN(std::string iri, ResolveName(name));
    return AttrExpr::Property(std::move(iri));
  }

  // restr := (FN '(' path ')' | path)? cmp value
  Result<Restriction> ParseRestriction() {
    Restriction r;
    bool expect_close = false;
    if (Peek().kind == Tok::kName && IsDerivedFn(Peek().text) &&
        Peek(1).kind == Tok::kPunct && Peek(1).text == "(") {
      r.derived_function = ToUpperAscii(Consume().text);
      Consume();  // '('
      expect_close = true;
    }
    if (Peek().kind == Tok::kName) {
      // path: name ('.' name)*
      RDFA_ASSIGN_OR_RETURN(std::string first, ResolveName(Consume().text));
      r.path.push_back(std::move(first));
      while (PeekPunct(".")) {
        Consume();
        if (Peek().kind != Tok::kName) return Err("expected path segment");
        RDFA_ASSIGN_OR_RETURN(std::string seg, ResolveName(Consume().text));
        r.path.push_back(std::move(seg));
      }
    }
    if (expect_close) RDFA_RETURN_NOT_OK(Expect(")"));
    if (Peek().kind != Tok::kPunct) return Err("expected comparison operator");
    r.op = Consume().text;
    if (r.op != "=" && r.op != "!=" && r.op != "<" && r.op != "<=" &&
        r.op != ">" && r.op != ">=") {
      return Err("bad comparison operator '" + r.op + "'");
    }
    // value
    const Tok& v = Peek();
    if (v.kind == Tok::kNumber) {
      std::string num = Consume().text;
      if (num.find('.') != std::string::npos) {
        r.value = Term::TypedLiteral(num, rdf::xsd::kDouble);
      } else {
        r.value = Term::TypedLiteral(num, rdf::xsd::kInteger);
      }
      return r;
    }
    if (v.kind == Tok::kString) {
      r.value = Term::Literal(Consume().text);
      return r;
    }
    if (v.kind == Tok::kName) {
      RDFA_ASSIGN_OR_RETURN(std::string iri, ResolveName(Consume().text));
      r.value = Term::Iri(std::move(iri));
      return r;
    }
    return Err("expected restriction value");
  }

  std::vector<Tok> toks_;
  const rdf::PrefixMap& prefixes_;
  std::string default_ns_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseHifun(std::string_view text, const rdf::PrefixMap& prefixes,
                         const std::string& default_ns) {
  RDFA_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(text));
  HifunParser parser(std::move(toks), prefixes, default_ns);
  return parser.Parse();
}

}  // namespace rdfa::hifun
