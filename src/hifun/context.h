#ifndef RDFA_HIFUN_CONTEXT_H_
#define RDFA_HIFUN_CONTEXT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfa::hifun {

/// Applicability report for one candidate attribute of an analysis context
/// (dissertation §4.1.1): HIFUN requires attributes to be *functional*
/// (single-valued) and ideally *total* (no missing values).
struct AttributeReport {
  std::string property;          ///< property IRI
  size_t items = 0;              ///< |D| examined
  size_t with_value = 0;         ///< items with >=1 value
  size_t multi_valued = 0;       ///< items with >1 value
  size_t missing = 0;            ///< items with no value

  bool functional() const { return multi_valued == 0; }
  bool total() const { return missing == 0; }
  /// HIFUN-ready without any FCO transformation.
  bool hifun_ready() const { return functional() && total(); }
};

/// An analysis context (D, A): a root class whose instances form the
/// dataset D, plus the candidate attributes applicable to D.
class AnalysisContext {
 public:
  /// Builds the context for `root_class` (IRI). An empty root selects every
  /// subject of the graph as D (the artificial initial state s0 of §5.3.2).
  AnalysisContext(const rdf::Graph& graph, std::string root_class);

  /// Multi-root context (§4.1.2): D is the union of the instances of all
  /// `root_classes` (e.g. both Company and Product as roots).
  AnalysisContext(const rdf::Graph& graph,
                  const std::vector<std::string>& root_classes);

  const std::string& root_class() const { return root_class_; }

  /// The items of D, as interned ids.
  const std::vector<rdf::TermId>& items() const { return items_; }

  /// Properties with at least one subject in D — the candidate direct
  /// attributes of the context.
  const std::vector<std::string>& candidate_attributes() const {
    return candidates_;
  }

  /// Checks the HIFUN prerequisites of `property` over D.
  AttributeReport Check(const rdf::Graph& graph,
                        const std::string& property) const;

  /// Checks every candidate attribute.
  std::vector<AttributeReport> CheckAll(const rdf::Graph& graph) const;

 private:
  std::string root_class_;
  std::vector<rdf::TermId> items_;
  std::vector<std::string> candidates_;
};

}  // namespace rdfa::hifun

#endif  // RDFA_HIFUN_CONTEXT_H_
