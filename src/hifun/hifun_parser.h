#ifndef RDFA_HIFUN_HIFUN_PARSER_H_
#define RDFA_HIFUN_HIFUN_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "hifun/query.h"
#include "rdf/namespaces.h"

namespace rdfa::hifun {

/// Parses the textual HIFUN notation used throughout the dissertation.
///
/// Grammar (whitespace-separated tokens; `o` is composition written
/// outermost-first as in the paper, `x` is pairing):
///
///   query   := '(' gpart ',' mpart ',' oppart ')' ('over' name)?
///   gpart   := 'eps' | attr restr*
///   mpart   := 'ID' | attr restr*
///   attr    := comp ('x' comp)*
///   comp    := atom ('o' atom)*          # "brand o delivers" = brand∘delivers
///   atom    := name | FUNC '(' attr ')' | '(' attr ')'
///   restr   := '/' (path)? cmp value     # "/ manufacturer.origin = ex:USA"
///   path    := name ('.' name)*          #   or "/ >= 2" (empty path)
///   oppart  := OP ('+' OP)* ('/' cmp number)?   # "SUM+AVG / > 1000"
///   cmp     := '=' | '!=' | '<' | '<=' | '>' | '>='
///   value   := number | '"'string'"' | name (resolved to an IRI)
///
/// Names resolve through `prefixes` when they contain ':', otherwise
/// against `default_ns`. Examples from the paper:
///   "(takesPlaceAt, inQuantity, SUM)"
///   "(brand o delivers, inQuantity, SUM)"
///   "((takesPlaceAt x delivers), inQuantity, SUM)"
///   "(takesPlaceAt / = ex:branch1, inQuantity, SUM)"
///   "(takesPlaceAt, inQuantity / >= 2, SUM / > 1000)"
///   "(MONTH(hasDate), inQuantity, SUM) over ex:Invoice"
Result<Query> ParseHifun(std::string_view text, const rdf::PrefixMap& prefixes,
                         const std::string& default_ns);

}  // namespace rdfa::hifun

#endif  // RDFA_HIFUN_HIFUN_PARSER_H_
