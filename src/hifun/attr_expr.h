#ifndef RDFA_HIFUN_ATTR_EXPR_H_
#define RDFA_HIFUN_ATTR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfa::hifun {

/// An attribute expression of the HIFUN functional algebra (dissertation
/// §2.5, §4.2.4): an arrow from the analysis-context root built from
/// properties with *composition* (f2 ∘ f1), *pairing* (f1 ⊗ f2) and
/// *derived attributes* (a built-in function such as MONTH applied to the
/// value of another attribute).
struct AttrExpr;
using AttrExprPtr = std::shared_ptr<AttrExpr>;

struct AttrExpr {
  enum class Kind {
    kIdentity,  ///< the identity function (used as measure for COUNT)
    kProperty,  ///< a direct attribute: one RDF property IRI
    kCompose,   ///< composition; components in application order (first
                ///< applied first, i.e. f_k ∘ … ∘ f_1 stores [f_1 … f_k])
    kPair,      ///< pairing ⊗; components are parallel arrows from the root
    kDerived,   ///< function(arg): a derived attribute (SPARQL built-in)
  };

  Kind kind = Kind::kIdentity;
  std::string property;             ///< kProperty: the property IRI
  std::string function;             ///< kDerived: upper-case function name
  std::vector<AttrExprPtr> args;    ///< components / single derived argument

  static AttrExprPtr Identity();
  static AttrExprPtr Property(std::string iri);
  /// Composition in application order: Compose({f1, f2}) is f2 ∘ f1.
  static AttrExprPtr Compose(std::vector<AttrExprPtr> in_application_order);
  static AttrExprPtr Pair(std::vector<AttrExprPtr> components);
  static AttrExprPtr Derived(std::string function, AttrExprPtr arg);

  /// Number of output columns this expression produces when used as a
  /// grouping function (pairings multiply out; everything else is 1).
  size_t Arity() const;

  /// Human-readable form mirroring the paper's notation, e.g.
  /// "brand ∘ delivers" or "(takesPlaceAt ⊗ delivers)".
  std::string ToString() const;
};

/// A restriction `/E` on a grouping or measuring expression (§4.2.2,
/// §4.2.5 general case): an optional property path followed by a comparison
/// with a URI or literal. An empty path restricts the attribute's own
/// value. `derived_function`, when set, is applied to the path end before
/// comparing — the paper's full example restricts by `month = 01`
/// (FILTER(MONTH(?x6) = 01)).
struct Restriction {
  std::vector<std::string> path;  ///< property IRIs walked from the attribute
  std::string derived_function;   ///< "" or YEAR/MONTH/DAY/... on the value
  std::string op = "=";           ///< "=", "!=", "<", "<=", ">", ">="
  rdf::Term value;

  std::string ToString() const;
};

/// The supported aggregate (reduction) operations.
enum class AggOp { kSum, kAvg, kCount, kMin, kMax };

const char* AggOpName(AggOp op);

}  // namespace rdfa::hifun

#endif  // RDFA_HIFUN_ATTR_EXPR_H_
