#ifndef RDFA_HIFUN_QUERY_H_
#define RDFA_HIFUN_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "hifun/attr_expr.h"

namespace rdfa::hifun {

/// A restriction `/ro` on the final (reduced) answer — the HAVING clause of
/// §4.2.3. Applies to the aggregate value of the op at `op_index`.
struct ResultRestriction {
  std::string op = ">";  ///< comparison operator
  double value = 0;      ///< numeric threshold
  size_t op_index = 0;   ///< which aggregate column it constrains
};

/// A HIFUN analytic query Q = (gE/rg, mE/rm, opE/ro) — dissertation §4.2.5.
///
/// `grouping` may be null for aggregate-only queries (Example 1 of §5.1, an
/// AVG with no GROUP BY). Multiple aggregate ops are allowed because the GUI
/// lets the user tick several functions at once (Fig 6.2: "Average, sum and
/// max price ... group by manufacturer").
struct Query {
  /// Root of the analysis context: instances of this class form D. Empty
  /// means every subject in the graph.
  std::string root_class;
  /// §4.1.2: "any set of classes can be selected as the roots of a
  /// context". Instances of these classes are unioned into D alongside
  /// `root_class`.
  std::vector<std::string> extra_root_classes;

  AttrExprPtr grouping;                        ///< gE (nullable)
  std::vector<Restriction> group_restrictions; ///< rg
  AttrExprPtr measuring;                       ///< mE (Identity for COUNT)
  std::vector<Restriction> measure_restrictions;  ///< rm
  std::vector<AggOp> ops;                      ///< opE (>=1)
  std::optional<ResultRestriction> result_restriction;  ///< ro

  /// Paper-style rendering, e.g. "(takesPlaceAt, inQuantity, SUM)".
  std::string ToString() const;
};

}  // namespace rdfa::hifun

#endif  // RDFA_HIFUN_QUERY_H_
