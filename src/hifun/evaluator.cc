#include "hifun/evaluator.h"

#include <map>
#include <optional>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "hifun/context.h"
#include "rdf/namespaces.h"
#include "sparql/value.h"

namespace rdfa::hifun {

using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;
using sparql::Value;

namespace {

/// Outcome of evaluating an attribute on one item: a value, "item skipped"
/// (missing), or a hard error (multi-valued).
struct EvalOutcome {
  std::optional<Term> value;
  Status status = Status::OK();
  bool missing = false;
};

EvalOutcome SingleObject(const rdf::Graph& graph, TermId item,
                         const std::string& property) {
  EvalOutcome out;
  TermId p = graph.terms().FindIri(property);
  if (p == kNoTermId) {
    out.missing = true;
    return out;
  }
  std::vector<rdf::TripleId> matches = graph.Match(item, p, kNoTermId);
  if (matches.empty()) {
    out.missing = true;
    return out;
  }
  if (matches.size() > 1) {
    out.status = Status::Precondition(
        "property <" + property +
        "> is multi-valued on an item; apply a feature-creation operator "
        "(Table 4.1) before analysis");
    return out;
  }
  out.value = graph.terms().Get(matches[0].o);
  return out;
}

Term ApplyDerived(const std::string& function, const Term& input,
                  bool* ok) {
  *ok = true;
  int component = -1;
  if (function == "YEAR") component = 0;
  else if (function == "MONTH") component = 1;
  else if (function == "DAY") component = 2;
  else if (function == "HOURS") component = 3;
  if (component >= 0) {
    auto c = sparql::DateTimeComponent(input.lexical(), component);
    if (!c.has_value()) {
      *ok = false;
      return Term();
    }
    return Term::Integer(*c);
  }
  if (function == "STR") return Term::Literal(input.lexical());
  if (function == "UCASE") return Term::Literal(ToUpperAscii(input.lexical()));
  if (function == "LCASE") return Term::Literal(ToLowerAscii(input.lexical()));
  *ok = false;
  return Term();
}

/// Evaluates a (non-pair) attribute expression on `item`, returning a
/// single value.
EvalOutcome EvalScalar(const rdf::Graph& graph, TermId item,
                       const AttrExpr& attr) {
  switch (attr.kind) {
    case AttrExpr::Kind::kIdentity: {
      EvalOutcome out;
      out.value = graph.terms().Get(item);
      return out;
    }
    case AttrExpr::Kind::kProperty:
      return SingleObject(graph, item, attr.property);
    case AttrExpr::Kind::kCompose: {
      TermId cur = item;
      EvalOutcome out;
      for (size_t i = 0; i < attr.args.size(); ++i) {
        EvalOutcome step = EvalScalar(graph, cur, *attr.args[i]);
        if (!step.status.ok() || step.missing) return step;
        if (i + 1 == attr.args.size()) return step;
        // Continue the walk: the intermediate value must be a resource in
        // the graph.
        TermId next = graph.terms().Find(*step.value);
        if (next == kNoTermId) {
          out.missing = true;
          return out;
        }
        cur = next;
      }
      out.missing = true;
      return out;
    }
    case AttrExpr::Kind::kDerived: {
      EvalOutcome inner = EvalScalar(graph, item, *attr.args[0]);
      if (!inner.status.ok() || inner.missing) return inner;
      bool ok = false;
      Term derived = ApplyDerived(attr.function, *inner.value, &ok);
      if (!ok) {
        inner.value.reset();
        inner.missing = true;
        return inner;
      }
      inner.value = derived;
      return inner;
    }
    case AttrExpr::Kind::kPair: {
      EvalOutcome out;
      out.status = Status::Internal("pairing is not a scalar attribute");
      return out;
    }
  }
  return EvalOutcome{};
}

/// Flattens an attribute expression into tuple components (pairs multiply
/// out, everything else is one component).
void FlattenComponents(const AttrExprPtr& attr,
                       std::vector<AttrExprPtr>* out) {
  if (attr->kind == AttrExpr::Kind::kPair) {
    for (const AttrExprPtr& a : attr->args) FlattenComponents(a, out);
  } else {
    out->push_back(attr);
  }
}

/// Checks one restriction against an item.
Result<bool> CheckRestriction(const rdf::Graph& graph, TermId item,
                              const AttrExprPtr& attr, const Restriction& r) {
  std::optional<Term> value;
  if (r.path.empty()) {
    AttrExprPtr target = attr != nullptr ? attr : AttrExpr::Identity();
    if (target->kind == AttrExpr::Kind::kPair) {
      return Status::InvalidArgument(
          "a restriction with an empty path cannot apply to a pairing");
    }
    EvalOutcome out = EvalScalar(graph, item, *target);
    if (!out.status.ok()) return out.status;
    if (out.missing) return false;
    value = out.value;
  } else {
    std::vector<AttrExprPtr> hops;
    hops.reserve(r.path.size());
    for (const std::string& p : r.path) hops.push_back(AttrExpr::Property(p));
    AttrExprPtr path_expr = AttrExpr::Compose(std::move(hops));
    EvalOutcome out = EvalScalar(graph, item, *path_expr);
    if (!out.status.ok()) return out.status;
    if (out.missing) return false;
    value = out.value;
  }

  if (!r.derived_function.empty()) {
    bool ok = false;
    Term derived = ApplyDerived(r.derived_function, *value, &ok);
    if (!ok) return false;  // e.g. MONTH of a non-date: no match
    value = derived;
  }

  Value lhs = Value::FromTerm(*value);
  Value rhs = Value::FromTerm(r.value);
  if (r.op == "=" || r.op == "!=") {
    auto eq = Value::Equals(lhs, rhs);
    if (!eq.has_value()) return false;
    return r.op == "=" ? *eq : !*eq;
  }
  auto c = Value::Compare(lhs, rhs);
  if (!c.has_value()) return false;
  if (r.op == "<") return *c < 0;
  if (r.op == "<=") return *c <= 0;
  if (r.op == ">") return *c > 0;
  if (r.op == ">=") return *c >= 0;
  return Status::InvalidArgument("unknown restriction operator " + r.op);
}

}  // namespace

Result<sparql::ResultTable> Evaluator::Evaluate(const Query& query,
                                                const QueryContext& ctx) const {
  if (query.ops.empty()) {
    return Status::InvalidArgument("a HIFUN query needs >=1 aggregate op");
  }
  TraceSpan eval_span(ctx.tracer(), "hifun-evaluate");
  RDFA_RETURN_NOT_OK(ctx.Check("hifun-admission"));
  std::vector<std::string> roots = {query.root_class};
  for (const std::string& extra : query.extra_root_classes) {
    roots.push_back(extra);
  }
  AnalysisContext context(graph_, roots);

  std::vector<AttrExprPtr> group_components;
  if (query.grouping != nullptr) {
    FlattenComponents(query.grouping, &group_components);
  }
  AttrExprPtr measure =
      query.measuring != nullptr ? query.measuring : AttrExpr::Identity();

  // Grouping + measuring. Evaluating one item touches only const graph
  // state, so items are processed in parallel morsels; each morsel's
  // results are merged back in item order, which keeps the per-group
  // measure sequences (and thus SUM/AVG rounding) byte-identical to a
  // serial run. Errors are reported from the earliest item, as serial would.
  struct ItemOut {
    bool has = false;  ///< survived restrictions and has key + measure
    std::vector<std::string> key;
    std::vector<Term> key_terms;
    Term value;
  };
  auto eval_item = [&](TermId item, ItemOut* out) -> Status {
    // Restrictions on both sides restrict the item set E.
    for (const Restriction& r : query.group_restrictions) {
      RDFA_ASSIGN_OR_RETURN(bool ok,
                            CheckRestriction(graph_, item, query.grouping, r));
      if (!ok) return Status::OK();
    }
    for (const Restriction& r : query.measure_restrictions) {
      RDFA_ASSIGN_OR_RETURN(bool ok,
                            CheckRestriction(graph_, item, measure, r));
      if (!ok) return Status::OK();
    }

    // Group key.
    for (const AttrExprPtr& g : group_components) {
      EvalOutcome o = EvalScalar(graph_, item, *g);
      RDFA_RETURN_NOT_OK(o.status);
      if (o.missing) return Status::OK();
      out->key.push_back(o.value->ToNTriples());
      out->key_terms.push_back(*o.value);
    }

    // Measure.
    EvalOutcome m = EvalScalar(graph_, item, *measure);
    RDFA_RETURN_NOT_OK(m.status);
    if (m.missing) return Status::OK();
    out->value = *m.value;
    out->has = true;
    return Status::OK();
  };

  const std::vector<TermId>& items = context.items();
  std::map<std::vector<std::string>, std::vector<Term>> groups;
  std::map<std::vector<std::string>, std::vector<Term>> group_keys;
  auto merge = [&](ItemOut& out) {
    if (!out.has) return;
    groups[out.key].push_back(std::move(out.value));
    group_keys.emplace(std::move(out.key), std::move(out.key_terms));
  };

  std::optional<TraceSpan> gm_span;
  gm_span.emplace(ctx.tracer(), "hifun-group-measure");
  gm_span->Arg("items", static_cast<uint64_t>(items.size()));

  constexpr size_t kMinItemsParallel = 128;
  if (threads_ > 1 && items.size() >= kMinItemsParallel) {
    graph_.Freeze();  // one first-touch build, not a per-worker race to it
    auto morsels = Morsels(items.size(), static_cast<size_t>(threads_) * 4,
                           /*min_grain=*/64);
    struct MorselOut {
      std::vector<ItemOut> outs;
      Status status = Status::OK();
    };
    std::vector<MorselOut> parts(morsels.size());
    ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
      // Cooperative checkpoint per morsel of the group-measure pass.
      Status admitted = ctx.Check("hifun-group-measure");
      if (!admitted.ok()) {
        parts[m].status = admitted;
        return;
      }
      auto [lo, hi] = morsels[m];
      parts[m].outs.resize(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        Status st = eval_item(items[i], &parts[m].outs[i - lo]);
        if (!st.ok()) {
          parts[m].status = st;  // stop at the morsel's first error
          return;
        }
      }
    });
    RDFA_RETURN_NOT_OK(ctx.Check("hifun-group-measure"));
    // Items are contiguous per morsel, so the first failing morsel holds
    // the globally earliest error — the one a serial run would return.
    for (const MorselOut& part : parts) {
      RDFA_RETURN_NOT_OK(part.status);
    }
    for (MorselOut& part : parts) {
      for (ItemOut& out : part.outs) merge(out);
    }
  } else {
    size_t since_check = 0;
    for (TermId item : items) {
      if (since_check++ % 256 == 0) {
        RDFA_RETURN_NOT_OK(ctx.Check("hifun-group-measure"));
      }
      ItemOut out;
      RDFA_RETURN_NOT_OK(eval_item(item, &out));
      merge(out);
    }
  }

  gm_span->Arg("groups", static_cast<uint64_t>(groups.size()));
  gm_span.reset();

  // Reduction.
  TraceSpan red_span(ctx.tracer(), "hifun-reduction");
  std::vector<std::string> columns;
  for (const AttrExprPtr& g : group_components) {
    columns.push_back(g->ToString());
  }
  for (AggOp op : query.ops) columns.push_back(AggOpName(op));
  sparql::ResultTable table(std::move(columns));

  size_t groups_since_check = 0;
  for (const auto& [key, values] : groups) {
    if (groups_since_check++ % 64 == 0) {
      RDFA_RETURN_NOT_OK(ctx.Check("hifun-reduction"));
    }
    std::vector<Term> row = group_keys[key];
    std::vector<double> agg_values;
    bool numeric_ok = true;
    for (AggOp op : query.ops) {
      if (op == AggOp::kCount) {
        agg_values.push_back(static_cast<double>(values.size()));
        row.push_back(Term::Integer(static_cast<int64_t>(values.size())));
        continue;
      }
      if (op == AggOp::kMin || op == AggOp::kMax) {
        const Term* best = &values[0];
        for (const Term& v : values) {
          auto c = Value::Compare(Value::FromTerm(v), Value::FromTerm(*best));
          if (c.has_value() &&
              ((op == AggOp::kMin && *c < 0) || (op == AggOp::kMax && *c > 0))) {
            best = &v;
          }
        }
        auto n = Value::FromTerm(*best).AsNumeric();
        agg_values.push_back(n.value_or(0));
        row.push_back(*best);
        continue;
      }
      double sum = 0;
      for (const Term& v : values) {
        auto n = Value::FromTerm(v).AsNumeric();
        if (!n.has_value()) {
          numeric_ok = false;
          break;
        }
        sum += *n;
      }
      if (!numeric_ok) {
        return Status::TypeError("non-numeric measure value under " +
                                 std::string(AggOpName(op)));
      }
      double result =
          op == AggOp::kAvg ? sum / static_cast<double>(values.size()) : sum;
      agg_values.push_back(result);
      if (result == static_cast<int64_t>(result) && op != AggOp::kAvg) {
        row.push_back(Term::Integer(static_cast<int64_t>(result)));
      } else {
        row.push_back(Term::Double(result));
      }
    }

    if (query.result_restriction.has_value()) {
      const ResultRestriction& rr = *query.result_restriction;
      if (rr.op_index >= agg_values.size()) {
        return Status::InvalidArgument("result restriction op_index out of range");
      }
      double v = agg_values[rr.op_index];
      bool keep = (rr.op == ">" && v > rr.value) ||
                  (rr.op == ">=" && v >= rr.value) ||
                  (rr.op == "<" && v < rr.value) ||
                  (rr.op == "<=" && v <= rr.value) ||
                  (rr.op == "=" && v == rr.value) ||
                  (rr.op == "!=" && v != rr.value);
      if (!keep) continue;
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace rdfa::hifun
