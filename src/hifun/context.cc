#include "hifun/context.h"

#include <set>

#include "rdf/namespaces.h"

namespace rdfa::hifun {

using rdf::kNoTermId;
using rdf::TermId;

AnalysisContext::AnalysisContext(const rdf::Graph& graph,
                                 std::string root_class)
    : AnalysisContext(graph, std::vector<std::string>{std::move(root_class)}) {
}

AnalysisContext::AnalysisContext(const rdf::Graph& graph,
                                 const std::vector<std::string>& root_classes)
    : root_class_(root_classes.empty() ? "" : root_classes.front()) {
  const rdf::TermTable& terms = graph.terms();
  std::set<TermId> item_set;
  bool any_root = false;
  for (const std::string& root : root_classes) {
    if (root.empty()) continue;
    any_root = true;
    TermId type = terms.FindIri(rdf::rdfns::kType);
    TermId cls = terms.FindIri(root);
    if (type != kNoTermId && cls != kNoTermId) {
      graph.ForEachMatch(kNoTermId, type, cls,
                         [&](const rdf::TripleId& t) { item_set.insert(t.s); });
    }
  }
  if (!any_root) {
    for (const rdf::TripleId& t : graph.triples()) item_set.insert(t.s);
  }
  items_.assign(item_set.begin(), item_set.end());

  // Candidate attributes: properties used by items of D.
  std::set<TermId> props;
  TermId type = terms.FindIri(rdf::rdfns::kType);
  for (TermId item : items_) {
    graph.ForEachMatch(item, kNoTermId, kNoTermId,
                       [&](const rdf::TripleId& t) {
                         if (t.p != type) props.insert(t.p);
                       });
  }
  for (TermId p : props) candidates_.push_back(terms.Get(p).lexical());
}

AttributeReport AnalysisContext::Check(const rdf::Graph& graph,
                                       const std::string& property) const {
  AttributeReport report;
  report.property = property;
  report.items = items_.size();
  TermId p = graph.terms().FindIri(property);
  for (TermId item : items_) {
    size_t n = (p == kNoTermId) ? 0 : graph.CountMatch(item, p, kNoTermId);
    if (n == 0) {
      ++report.missing;
    } else {
      ++report.with_value;
      if (n > 1) ++report.multi_valued;
    }
  }
  return report;
}

std::vector<AttributeReport> AnalysisContext::CheckAll(
    const rdf::Graph& graph) const {
  std::vector<AttributeReport> out;
  out.reserve(candidates_.size());
  for (const std::string& p : candidates_) out.push_back(Check(graph, p));
  return out;
}

}  // namespace rdfa::hifun
