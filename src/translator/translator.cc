#include "translator/translator.h"

#include <vector>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::translator {

using hifun::AggOp;
using hifun::AttrExpr;
using hifun::AttrExprPtr;
using hifun::Query;
using hifun::Restriction;
using rdf::Term;

namespace {

/// Builds the WHERE/SELECT fragments for one query. All state of the
/// translation algorithm (fresh variables, accumulated patterns, filters)
/// lives here.
class Translation {
 public:
  Result<std::string> Run(const Query& q) {
    if (q.ops.empty()) {
      return Status::InvalidArgument("HIFUN query has no aggregate op");
    }

    std::vector<std::string> roots;
    if (!q.root_class.empty()) roots.push_back(q.root_class);
    for (const std::string& extra : q.extra_root_classes) {
      if (!extra.empty()) roots.push_back(extra);
    }
    if (roots.size() == 1) {
      patterns_.push_back("?x1 <" + std::string(rdf::rdfns::kType) + "> <" +
                          roots[0] + "> .");
    } else if (roots.size() > 1) {
      // §4.1.2 multi-root context: D is the union of the root classes.
      std::string unions;
      for (size_t i = 0; i < roots.size(); ++i) {
        if (i > 0) unions += " UNION ";
        unions += "{ ?x1 <" + std::string(rdf::rdfns::kType) + "> <" +
                  roots[i] + "> . }";
      }
      patterns_.push_back(unions);
    }

    // Grouping expression -> retVars + patterns (Alg. 1 step 1, Alg. 2/3).
    std::vector<std::string> ret_exprs;
    std::string group_tail_expr;  // right(g) of the last scalar component
    if (q.grouping != nullptr) {
      RDFA_ASSIGN_OR_RETURN(ret_exprs, TranslateTopLevel(*q.grouping));
      if (!ret_exprs.empty()) group_tail_expr = ret_exprs.back();
    }

    // Measuring expression (Alg. 1 step 2).
    std::string measure_expr;  // right(m) or ?x1 for identity
    AttrExprPtr measure =
        q.measuring != nullptr ? q.measuring : AttrExpr::Identity();
    if (measure->kind == AttrExpr::Kind::kPair) {
      return Status::InvalidArgument("the measuring function must be scalar");
    }
    RDFA_ASSIGN_OR_RETURN(measure_expr, TranslateScalar(*measure, "?x1"));

    // Restrictions (Alg. 1 steps 1.1-2.2, Alg. 4 for paths).
    for (const Restriction& r : q.group_restrictions) {
      RDFA_RETURN_NOT_OK(
          TranslateRestriction(r, q.grouping, group_tail_expr));
    }
    for (const Restriction& r : q.measure_restrictions) {
      RDFA_RETURN_NOT_OK(TranslateRestriction(r, measure, measure_expr));
    }

    // Aggregate ops (Alg. 1 step 4).
    std::vector<std::string> agg_exprs;
    for (size_t i = 0; i < q.ops.size(); ++i) {
      std::string alias = "?agg" + std::to_string(i + 1);
      agg_exprs.push_back("(" + std::string(AggOpName(q.ops[i])) + "(" +
                          measure_expr + ") AS " + alias + ")");
    }

    // Assemble.
    std::string sparql = "SELECT ";
    for (const std::string& e : ret_exprs) sparql += e + " ";
    for (const std::string& e : agg_exprs) sparql += e + " ";
    sparql += "\nWHERE {\n";
    for (const std::string& p : patterns_) sparql += "  " + p + "\n";
    for (const std::string& f : filters_) sparql += "  FILTER(" + f + ") .\n";
    sparql += "}";
    if (!ret_exprs.empty()) {
      sparql += "\nGROUP BY";
      for (const std::string& e : ret_exprs) sparql += " " + e;
    }
    if (q.result_restriction.has_value()) {
      const auto& rr = *q.result_restriction;
      if (rr.op_index >= q.ops.size()) {
        return Status::InvalidArgument("result restriction op_index out of range");
      }
      sparql += "\nHAVING (" + std::string(AggOpName(q.ops[rr.op_index])) +
                "(" + measure_expr + ") " + rr.op + " " +
                FormatNumber(rr.value) + ")";
    }
    return sparql;
  }

 private:
  std::string FreshVar() { return "?x" + std::to_string(++var_counter_); }

  static std::string RenderTerm(const Term& t) { return t.ToNTriples(); }

  /// Top-level grouping translation: a pairing fans out from ?x1, each
  /// component contributing one returned expression (Alg. 2 Pairing /
  /// PairingOverCompositions).
  Result<std::vector<std::string>> TranslateTopLevel(const AttrExpr& attr) {
    std::vector<std::string> out;
    if (attr.kind == AttrExpr::Kind::kPair) {
      for (const AttrExprPtr& component : attr.args) {
        if (component->kind == AttrExpr::Kind::kPair) {
          RDFA_ASSIGN_OR_RETURN(std::vector<std::string> nested,
                                TranslateTopLevel(*component));
          for (std::string& e : nested) out.push_back(std::move(e));
        } else {
          RDFA_ASSIGN_OR_RETURN(std::string e,
                                TranslateScalar(*component, "?x1"));
          out.push_back(std::move(e));
        }
      }
      return out;
    }
    RDFA_ASSIGN_OR_RETURN(std::string e, TranslateScalar(attr, "?x1"));
    out.push_back(std::move(e));
    return out;
  }

  /// Scalar attribute translation (Alg. 2 Composition + Alg. 3 for derived
  /// attributes). Returns the "right" expression: a variable, or a built-in
  /// call wrapped around one.
  Result<std::string> TranslateScalar(const AttrExpr& attr,
                                      const std::string& from_var) {
    switch (attr.kind) {
      case AttrExpr::Kind::kIdentity:
        return from_var;
      case AttrExpr::Kind::kProperty: {
        std::string right = FreshVar();
        patterns_.push_back(from_var + " <" + attr.property + "> " + right +
                            " .");
        return right;
      }
      case AttrExpr::Kind::kCompose: {
        std::string cur = from_var;
        for (const AttrExprPtr& step : attr.args) {
          if (step->kind == AttrExpr::Kind::kDerived) {
            // Derived attribute in the middle/end of a composition: wrap
            // the current expression; no triple pattern (Alg. 3).
            RDFA_ASSIGN_OR_RETURN(cur, WrapDerived(*step, cur));
          } else {
            RDFA_ASSIGN_OR_RETURN(cur, TranslateScalar(*step, cur));
          }
        }
        return cur;
      }
      case AttrExpr::Kind::kDerived:
        return WrapDerivedFromRoot(attr, from_var);
      case AttrExpr::Kind::kPair:
        return Status::InvalidArgument(
            "pairing cannot appear nested inside a scalar position");
    }
    return Status::Internal("unhandled attribute kind");
  }

  /// Derived attribute whose argument still needs translation.
  Result<std::string> WrapDerivedFromRoot(const AttrExpr& attr,
                                          const std::string& from_var) {
    RDFA_ASSIGN_OR_RETURN(std::string inner,
                          TranslateScalar(*attr.args[0], from_var));
    return attr.function + "(" + inner + ")";
  }

  /// Derived attribute applied to an already-translated expression.
  Result<std::string> WrapDerived(const AttrExpr& attr,
                                  const std::string& inner) {
    if (!attr.args.empty() && attr.args[0]->kind != AttrExpr::Kind::kIdentity) {
      // A derived step inside a composition takes the running value.
      return attr.function + "(" + inner + ")";
    }
    return attr.function + "(" + inner + ")";
  }

  /// Restriction translation (Alg. 1 steps 1.1/1.2 & 2.1/2.2; Alg. 4 lines
  /// 3-10 for restriction paths).
  Status TranslateRestriction(const Restriction& r, const AttrExprPtr& attr,
                              const std::string& attr_expr) {
    auto wrap = [&](const std::string& expr) {
      return r.derived_function.empty() ? expr
                                        : r.derived_function + "(" + expr +
                                              ")";
    };
    if (r.path.empty()) {
      if (attr != nullptr && attr->kind == AttrExpr::Kind::kPair) {
        return Status::InvalidArgument(
            "a restriction with an empty path cannot apply to a pairing");
      }
      // Constrains the attribute's own value.
      if (r.value.is_iri() && r.op == "=" && r.derived_function.empty()) {
        // Alg. 1 line 5: expressed as a triple pattern from the root.
        if (attr != nullptr && attr->kind == AttrExpr::Kind::kProperty) {
          patterns_.push_back("?x1 <" + attr->property + "> " +
                              RenderTerm(r.value) + " .");
          return Status::OK();
        }
        // Composed / derived attribute: constrain the right expression.
        filters_.push_back(attr_expr + " = " + RenderTerm(r.value));
        return Status::OK();
      }
      filters_.push_back(wrap(attr_expr) + " " + r.op + " " +
                         RenderTerm(r.value));
      return Status::OK();
    }
    // Restriction path: walk from the root (Alg. 4 Composition(rg.functions)).
    std::string cur = "?x1";
    for (size_t i = 0; i < r.path.size(); ++i) {
      bool last = i + 1 == r.path.size();
      if (last && r.value.is_iri() && r.op == "=" &&
          r.derived_function.empty()) {
        patterns_.push_back(cur + " <" + r.path[i] + "> " +
                            RenderTerm(r.value) + " .");
        return Status::OK();
      }
      std::string next = FreshVar();
      patterns_.push_back(cur + " <" + r.path[i] + "> " + next + " .");
      cur = next;
    }
    filters_.push_back(wrap(cur) + " " + r.op + " " + RenderTerm(r.value));
    return Status::OK();
  }

  int var_counter_ = 1;  // ?x1 is the root
  std::vector<std::string> patterns_;
  std::vector<std::string> filters_;
};

}  // namespace

Result<std::string> TranslateToSparql(const Query& query) {
  Translation t;
  return t.Run(query);
}

}  // namespace rdfa::translator
