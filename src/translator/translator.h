#ifndef RDFA_TRANSLATOR_TRANSLATOR_H_
#define RDFA_TRANSLATOR_TRANSLATOR_H_

#include <string>

#include "common/status.h"
#include "hifun/query.h"

namespace rdfa::translator {

/// Translates a HIFUN query to a SPARQL SELECT query, implementing the
/// dissertation's Algorithms 1-4 (§4.2.5):
///
///  * the grouping expression yields triple patterns in WHERE plus the
///    returned variables in SELECT and GROUP BY (Alg. 1);
///  * compositions chain fresh variables (?x1 f1 ?x2 . ?x2 f2 ?x3), pairings
///    fan out from the root variable, pairings-over-compositions combine
///    both (Alg. 2);
///  * derived attributes become SPARQL built-in calls wrapped around the
///    inner variable in SELECT/GROUP BY, producing no triple pattern
///    (Alg. 3);
///  * URI restrictions become triple patterns ending at the URI, literal
///    restrictions become FILTERs, restriction *paths* extend the pattern
///    chain first (Alg. 4 general case);
///  * the result restriction becomes a HAVING clause (§4.2.3).
///
/// The root of the analysis context binds to ?x1; a non-empty
/// `query.root_class` adds `?x1 rdf:type <root>`.
Result<std::string> TranslateToSparql(const hifun::Query& query);

}  // namespace rdfa::translator

#endif  // RDFA_TRANSLATOR_TRANSLATOR_H_
