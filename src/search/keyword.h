#ifndef RDFA_SEARCH_KEYWORD_H_
#define RDFA_SEARCH_KEYWORD_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fs/state.h"
#include "rdf/graph.h"

namespace rdfa::search {

/// One ranked keyword hit: a subject resource and its score.
struct Hit {
  rdf::TermId subject = rdf::kNoTermId;
  double score = 0;
};

/// A minimal keyword-search access method over an RDF graph — the paper's
/// starting point (ii) for a session (§5.3.2: "the result of a keyword
/// query"). Indexes the tokens of literal objects and of IRI local names,
/// attributing each token to the triple's subject. Scoring is
/// matched-token count weighted by inverse document frequency.
class KeywordIndex {
 public:
  /// Builds the index over the current graph contents.
  explicit KeywordIndex(const rdf::Graph& graph);

  /// Ranked subjects matching any query token (OR semantics), best first.
  /// Multi-token queries rank subjects matching more tokens higher.
  std::vector<Hit> Search(std::string_view query, size_t limit = 50) const;

  /// The hits as a faceted-search extension (feed to
  /// Session::StartFromResults).
  fs::Extension SearchAsExtension(std::string_view query,
                                  size_t limit = 50) const;

  size_t num_tokens() const { return index_.size(); }

 private:
  std::map<std::string, std::set<rdf::TermId>> index_;
  size_t num_subjects_ = 0;
};

/// Lower-cased alphanumeric tokens of `text` (splitting camelCase and
/// punctuation), as used by the index.
std::vector<std::string> TokenizeText(std::string_view text);

}  // namespace rdfa::search

#endif  // RDFA_SEARCH_KEYWORD_H_
