#include "search/keyword.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace rdfa::search {

using rdf::kNoTermId;
using rdf::TermId;

std::vector<std::string> TokenizeText(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&]() {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  char prev = '\0';
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      // Split camelCase boundaries: "releaseDate" -> "release", "date".
      if (std::isupper(static_cast<unsigned char>(c)) &&
          std::islower(static_cast<unsigned char>(prev))) {
        flush();
      }
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      flush();
    }
    prev = c;
  }
  flush();
  return out;
}

namespace {

std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}

}  // namespace

KeywordIndex::KeywordIndex(const rdf::Graph& graph) {
  std::set<TermId> subjects;
  for (const rdf::TripleId& t : graph.triples()) {
    subjects.insert(t.s);
    const rdf::Term& obj = graph.terms().Get(t.o);
    std::vector<std::string> tokens;
    if (obj.is_literal()) {
      tokens = TokenizeText(obj.lexical());
    } else if (obj.is_iri()) {
      tokens = TokenizeText(LocalName(obj.lexical()));
    }
    for (std::string& tok : tokens) {
      index_[std::move(tok)].insert(t.s);
    }
    // The subject's own local name also identifies it.
    const rdf::Term& subj = graph.terms().Get(t.s);
    if (subj.is_iri()) {
      for (std::string& tok : TokenizeText(LocalName(subj.lexical()))) {
        index_[std::move(tok)].insert(t.s);
      }
    }
  }
  num_subjects_ = subjects.size();
}

std::vector<Hit> KeywordIndex::Search(std::string_view query,
                                      size_t limit) const {
  std::map<TermId, double> scores;
  for (const std::string& tok : TokenizeText(query)) {
    auto it = index_.find(tok);
    if (it == index_.end()) continue;
    // Inverse document frequency: rarer tokens weigh more.
    double idf = std::log(
        (static_cast<double>(num_subjects_) + 1.0) /
        (static_cast<double>(it->second.size()) + 1.0));
    for (TermId s : it->second) scores[s] += 1.0 + idf;
  }
  std::vector<Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [s, score] : scores) hits.push_back({s, score});
  std::stable_sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.subject < b.subject;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

fs::Extension KeywordIndex::SearchAsExtension(std::string_view query,
                                              size_t limit) const {
  fs::Extension out;
  for (const Hit& h : Search(query, limit)) out.insert(h.subject);
  return out;
}

}  // namespace rdfa::search
