#include "endpoint/request_handler.h"

#include "common/string_util.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"

namespace rdfa::endpoint {

const char* ContentTypeFor(ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson: return "application/sparql-results+json";
    case ResultFormat::kTsv: return "text/tab-separated-values";
    case ResultFormat::kCsv: return "text/csv";
    case ResultFormat::kXml: return "application/sparql-results+xml";
  }
  return "application/sparql-results+json";
}

bool NegotiateFormat(const std::string& accept, ResultFormat* out) {
  // Accept headers arrive as comma-separated ranges with optional q-params;
  // the first recognized media type (or short format name) wins. Quality
  // factors are ignored — clients of this engine list what they want first.
  if (accept.empty()) {
    *out = ResultFormat::kJson;
    return true;
  }
  for (const std::string& part : SplitString(accept, ',')) {
    std::string range = ToLowerAscii(TrimWhitespace(part));
    size_t semi = range.find(';');
    if (semi != std::string::npos) {
      range = std::string(TrimWhitespace(range.substr(0, semi)));
    }
    if (range == "application/sparql-results+json" ||
        range == "application/json" || range == "json" || range == "*/*" ||
        range == "application/*") {
      *out = ResultFormat::kJson;
      return true;
    }
    if (range == "text/tab-separated-values" || range == "tsv") {
      *out = ResultFormat::kTsv;
      return true;
    }
    if (range == "text/csv" || range == "csv") {
      *out = ResultFormat::kCsv;
      return true;
    }
    if (range == "application/sparql-results+xml" || range == "xml" ||
        range == "text/*") {
      *out = ResultFormat::kXml;
      return true;
    }
  }
  return false;
}

RequestHandler::RequestHandler(SimulatedEndpoint* endpoint,
                               double max_timeout_ms)
    : endpoint_(endpoint),
      max_timeout_ms_(max_timeout_ms < 0 ? 0 : max_timeout_ms) {}

int RequestHandler::HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kResourceExhausted:
      return 503;  // shed by admission control; retryable
    case StatusCode::kDeadlineExceeded:
      return 504;  // budget tripped (queued or mid-execution)
    case StatusCode::kCancelled:
      return 499;  // client went away / cooperative kill
    case StatusCode::kInternal:
      return 500;
    default:
      return 400;  // parse error, unsupported feature, type error, ...
  }
}

std::string RequestHandler::Serialize(const sparql::ResultTable& table,
                                      ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson: return sparql::WriteResultsJson(table);
    case ResultFormat::kTsv: return sparql::WriteResultsTsv(table);
    case ResultFormat::kCsv: return sparql::WriteResultsCsv(table);
    case ResultFormat::kXml: return sparql::WriteResultsXml(table);
  }
  return sparql::WriteResultsJson(table);
}

std::string RequestHandler::ErrorBody(const Status& status) {
  return std::string("{\"error\":\"") + JsonEscape(status.message()) +
         "\",\"code\":\"" + StatusCodeName(status.code()) + "\"}";
}

EndpointResponse RequestHandler::Handle(const EndpointRequest& request) {
  EndpointResponse out;
  // The request's own budget, capped by the handler's maximum; a request
  // that asks for none inherits the cap. The endpoint's admission-derived
  // budget still min-combines inside Query().
  QueryContext ctx = request.ctx;
  double budget = request.timeout_ms;
  if (max_timeout_ms_ > 0 && (budget <= 0 || budget > max_timeout_ms_)) {
    budget = max_timeout_ms_;
  }
  if (budget > 0) ctx = ctx.ChildWithDeadlineMs(budget);

  Result<QueryResponse> served = endpoint_->Query(request.query, ctx);
  if (!served.ok()) {
    // Transport arm: unparsable query, engine failure. No QueryResponse
    // exists; classify and render the error document.
    out.status = served.status();
  } else {
    out.detail = std::move(served).value();
    out.status = out.detail.status;
  }
  out.http_status = HttpStatusFor(out.status);
  if (out.http_status == 200) {
    out.content_type = ContentTypeFor(request.format);
    out.body = Serialize(out.detail.table, request.format);
  } else {
    out.content_type = "application/json";
    out.body = ErrorBody(out.status);
  }
  return out;
}

Result<std::string> RequestHandler::Explain(const std::string& query) const {
  Result<sparql::ParsedQuery> parsed = sparql::ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  // Plan against whatever queries would execute against right now: the
  // legacy-mode graph, or a freshly pinned MVCC head snapshot (the pin
  // keeps the version alive for the duration of planning).
  rdf::MvccGraph::Pin pin;
  rdf::Graph* g = endpoint_->base_graph();
  if (endpoint_->mvcc_mode()) {
    pin = endpoint_->mvcc()->Snapshot();
    g = pin.graph.get();
  }
  sparql::Executor exec(g);
  exec.set_thread_count(endpoint_->thread_count());
  exec.set_join_strategy(endpoint_->join_strategy());
  exec.set_use_dp(endpoint_->use_dp());
  return exec.ExplainJson(parsed.value());
}

}  // namespace rdfa::endpoint
