#ifndef RDFA_ENDPOINT_REQUEST_HANDLER_H_
#define RDFA_ENDPOINT_REQUEST_HANDLER_H_

#include <string>

#include "common/query_context.h"
#include "common/status.h"
#include "endpoint/endpoint.h"

namespace rdfa::endpoint {

/// Result serializations the request pipeline can negotiate. JSON and TSV
/// are the wire defaults (SPARQL 1.1 results formats); CSV and XML ride
/// along because the serializers already exist.
enum class ResultFormat { kJson, kTsv, kCsv, kXml };

/// The format's canonical media type (what an HTTP response advertises).
const char* ContentTypeFor(ResultFormat format);

/// Maps an Accept-header value (or a `format=` parameter: "json", "tsv",
/// "csv", "xml") to a ResultFormat. Exact media types win; empty input and
/// `*/*` fall back to JSON. Returns false for a value that names none of
/// the supported serializations (an HTTP 406).
bool NegotiateFormat(const std::string& accept, ResultFormat* out);

/// One request as the transport-independent pipeline sees it: decoded query
/// text plus the request-scoped knobs every front-end (HTTP, simulated,
/// differential tests) must agree on.
struct EndpointRequest {
  std::string query;
  /// Requested per-request deadline in milliseconds; 0 = none. The handler
  /// caps it at its configured maximum, and the endpoint's own admission
  /// budget still combines in (the tightest deadline wins).
  double timeout_ms = 0;
  ResultFormat format = ResultFormat::kJson;
  /// Caller-supplied cancellation/deadline handle (shared cancel state).
  QueryContext ctx;
};

/// The pipeline's answer: a protocol status code, a serialized body, and
/// the engine-level response for callers that want timings or stats.
struct EndpointResponse {
  /// HTTP-shaped outcome: 200 served, 400 parse error, 499 cancelled,
  /// 500 engine failure, 503 shed, 504 deadline exceeded.
  int http_status = 200;
  /// Media type of `body` (the negotiated format on 200, application/json
  /// for error documents).
  std::string content_type;
  /// Serialized result table on 200; a one-object JSON error document
  /// ({"error":...,"code":...}) otherwise.
  std::string body;
  /// Same classification the simulated path reports on QueryResponse.
  Status status;
  /// Engine response (timings, cache flags, partial ExecStats). On
  /// transport-arm failures (parse errors) only `status` is meaningful.
  QueryResponse detail;
};

/// The one request→admission→execute→serialize pipeline shared by every
/// front-end. The HTTP server parses bytes into an EndpointRequest and
/// writes the EndpointResponse back out; the simulated endpoint *is* the
/// execution stage (Handle calls SimulatedEndpoint::Query, so admission,
/// deadlines, caching, MVCC snapshots, tracing and the query log all apply
/// identically however a request arrives). The differential suite pushes
/// one query set through Handle directly and through a live socket and
/// asserts byte-identical bodies and identical outcome counters.
class RequestHandler {
 public:
  /// `max_timeout_ms` caps (and, for requests that ask for none, supplies)
  /// the per-request deadline; 0 = requests run uncapped unless they ask.
  explicit RequestHandler(SimulatedEndpoint* endpoint,
                          double max_timeout_ms = 0);

  EndpointResponse Handle(const EndpointRequest& request);

  /// EXPLAIN for GET /explain: plans the query with the endpoint's
  /// configured planner knobs and returns the plan JSON — no data rows are
  /// touched. In MVCC mode the plan is computed against a pinned snapshot.
  Result<std::string> Explain(const std::string& query) const;

  SimulatedEndpoint* endpoint() const { return endpoint_; }
  double max_timeout_ms() const { return max_timeout_ms_; }

  /// The HTTP status the pipeline assigns to an endpoint outcome; exposed
  /// so front-ends and tests share one mapping.
  static int HttpStatusFor(const Status& status);

  /// Serializes `table` in `format` (the shared serialize stage).
  static std::string Serialize(const sparql::ResultTable& table,
                               ResultFormat format);

  /// Renders the JSON error document used for every non-200 outcome.
  static std::string ErrorBody(const Status& status);

 private:
  SimulatedEndpoint* endpoint_;
  double max_timeout_ms_;
};

}  // namespace rdfa::endpoint

#endif  // RDFA_ENDPOINT_REQUEST_HANDLER_H_
