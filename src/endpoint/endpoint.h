#ifndef RDFA_ENDPOINT_ENDPOINT_H_
#define RDFA_ENDPOINT_ENDPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/mvcc.h"
#include "sparql/exec_stats.h"
#include "sparql/plan_cache.h"
#include "sparql/result_table.h"

namespace rdfa::endpoint {

/// Deterministic latency model of a remote SPARQL endpoint. The paper's
/// efficiency experiments (Tables 6.1/6.2) measured a live endpoint at peak
/// and off-peak hours; we reproduce the *shape* of that contrast with a
/// modeled endpoint: total time = execution time x load multiplier +
/// simulated network round-trip. No sleeping is involved — execution time
/// is really measured, the remote overheads are modeled (see DESIGN.md
/// substitution table).
struct LatencyProfile {
  std::string name;
  double load_multiplier = 1.0;   ///< endpoint contention slows service
  double network_base_ms = 0;     ///< round-trip floor
  double network_jitter_ms = 0;   ///< deterministic pseudo-random jitter amp

  /// Peak hours: busy endpoint, loaded network (§6.4 Table 6.1).
  static LatencyProfile Peak();
  /// Off-peak hours (Table 6.2).
  static LatencyProfile OffPeak();
  /// Local in-process evaluation (no modeled overhead).
  static LatencyProfile Local();
};

/// Admission-control knobs: how many queries the endpoint serves at once,
/// how many it queues beyond that, and the per-query time budget. The
/// budget is scaled by the profile's load multiplier (a busy endpoint
/// gives each query a *tighter* slice), mirroring how public endpoints
/// enforce stricter limits at peak hours.
struct AdmissionOptions {
  size_t max_in_flight = 4;  ///< queries executing concurrently
  size_t max_queue = 8;      ///< FIFO waiters beyond that; 0 = shed at once
  /// Per-query budget at load multiplier 1.0; effective timeout =
  /// base_timeout_ms / load_multiplier. <= 0 disables the derived deadline.
  double base_timeout_ms = 10'000;
};

/// Timing breakdown of one endpoint query.
struct QueryResponse {
  sparql::ResultTable table;
  double exec_ms = 0;      ///< measured local evaluation time
  double network_ms = 0;   ///< modeled round-trip
  double total_ms = 0;     ///< exec * load_multiplier + network + queued
  double queued_ms = 0;    ///< time spent waiting for an admission slot
  size_t queue_depth = 0;  ///< waiters still queued when admitted / shed
  bool cache_hit = false;
  /// The execution reused a cached plan (parse + BGP reordering skipped).
  /// Always false on answer-cache hits — nothing executed at all.
  bool plan_cache_hit = false;
  /// Outcome of the request. OK for a served answer. DeadlineExceeded /
  /// Cancelled when the query tripped its budget mid-execution — the table
  /// is empty but exec_stats keeps the partial work (aborted stage, rows
  /// scanned so far). ResourceExhausted when admission shed the query (the
  /// message carries the queue depth). Transport-level failures — an
  /// unparsable query, an engine error — stay in the Result error arm.
  Status status;
  /// Engine-side execution statistics (join order, rows scanned, morsel
  /// count, per-stage wall time). Zeroed on cache hits — nothing executed.
  sparql::ExecStats exec_stats;
};

/// One served query, as kept in the endpoint's log.
struct QueryLogEntry {
  std::string query_head;  ///< first line of the query text
  double exec_ms = 0;
  double total_ms = 0;
  double queued_ms = 0;    ///< admission-queue wait
  size_t rows = 0;
  bool cache_hit = false;
};

/// Aggregate statistics over the query log.
struct EndpointStats {
  size_t count = 0;
  double mean_exec_ms = 0;
  double max_exec_ms = 0;
  double p95_exec_ms = 0;
  double mean_total_ms = 0;
  double p50_total_ms = 0;
  double p99_total_ms = 0;
  double p50_queued_ms = 0;  ///< median admission-queue wait
  double p99_queued_ms = 0;  ///< tail admission-queue wait
  size_t shed = 0;       ///< admission rejections (ResourceExhausted)
  size_t timed_out = 0;  ///< queries that tripped their deadline
  size_t cancelled = 0;  ///< cooperatively cancelled queries
};

/// A SPARQL endpoint facade over the local engine with the latency model,
/// an optional generation-checked answer + plan cache (an ablation knob),
/// and a query log.
///
/// Caching protocol: every cached artifact is stamped with the graph's
/// mutation generation (rdf::Graph::Generation()) read *before* execution.
/// A lookup under a different generation is a miss that lazily evicts the
/// stale entry, so an answer computed before a SPARQL UPDATE can never be
/// served after it. Queries are fingerprinted with whitespace-normalized
/// text (NormalizeQueryText), so reformattings share an entry.
///
/// MVCC mode (the rdf::MvccGraph constructor): each query pins an immutable
/// snapshot for its whole lifetime — no graph lock is held across a query
/// and concurrent commits never stall readers. Cached artifacts carry the
/// query's *predicate footprint* and are stamped with
/// Graph::FootprintStamp(footprint) instead of the global generation, so a
/// commit invalidates only the entries whose footprint intersects the
/// predicates it actually touched (wildcard footprints — variable
/// predicates, property paths, DESCRIBE — still fall back to the global
/// generation). set_predicate_invalidation(false) degrades every footprint
/// to a wildcard, restoring whole-cache invalidation as an ablation
/// baseline.
class SimulatedEndpoint {
 public:
  SimulatedEndpoint(rdf::Graph* graph, LatencyProfile profile,
                    bool enable_cache = false);
  /// MVCC mode: queries pin MvccGraph snapshots and the caches use
  /// predicate-granular invalidation. Writers mutate through `mvcc`
  /// directly (Insert/Remove/BufferUpdate + Commit) — no exclusive access
  /// w.r.t. this endpoint is required.
  SimulatedEndpoint(rdf::MvccGraph* mvcc, LatencyProfile profile,
                    bool enable_cache = false);

  /// RAII hold on one in-flight execution slot; releasing (or destroying)
  /// it wakes the next FIFO waiter. Default-constructed slots hold nothing.
  class AdmissionSlot {
   public:
    AdmissionSlot() = default;
    AdmissionSlot(const AdmissionSlot&) = delete;
    AdmissionSlot& operator=(const AdmissionSlot&) = delete;
    AdmissionSlot(AdmissionSlot&& other) noexcept { *this = std::move(other); }
    AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
      if (this != &other) {
        Release();
        endpoint_ = other.endpoint_;
        queued_ms_ = other.queued_ms_;
        queue_depth_ = other.queue_depth_;
        other.endpoint_ = nullptr;
      }
      return *this;
    }
    ~AdmissionSlot() { Release(); }

    void Release();
    bool held() const { return endpoint_ != nullptr; }
    double queued_ms() const { return queued_ms_; }
    size_t queue_depth() const { return queue_depth_; }

   private:
    friend class SimulatedEndpoint;
    SimulatedEndpoint* endpoint_ = nullptr;
    double queued_ms_ = 0;
    size_t queue_depth_ = 0;
  };

  Result<QueryResponse> Query(const std::string& sparql);

  /// As above with a caller-supplied deadline/cancellation context. The
  /// profile-derived per-query timeout is combined in (the tighter deadline
  /// wins); cancel state is shared, so the caller can abort a query that is
  /// executing — or still queued — from another thread.
  Result<QueryResponse> Query(const std::string& sparql, QueryContext ctx);

  /// Acquires an execution slot, waiting FIFO behind earlier arrivals.
  /// Sheds with ResourceExhausted when the wait queue is full; unwinds with
  /// DeadlineExceeded/Cancelled if `ctx` trips while queued. Exposed so
  /// tests (and embedders doing their own execution) can hold slots
  /// deterministically. `queue_depth` (optional) receives the number of
  /// waiters at the admit/shed decision.
  Result<AdmissionSlot> Admit(const QueryContext& ctx = QueryContext(),
                              size_t* queue_depth = nullptr);

  /// Admission-control knobs (applies to subsequent queries).
  void set_admission(AdmissionOptions opts);
  AdmissionOptions admission() const;
  /// The per-query budget after load scaling:
  /// base_timeout_ms / load_multiplier (0 = unlimited).
  double effective_timeout_ms() const;

  /// Morsel-parallelism budget for served queries (default 1 = serial).
  /// Parallel answers are byte-identical to serial ones, so the cache and
  /// the latency model are unaffected by this knob.
  void set_thread_count(int threads) { thread_count_ = threads < 1 ? 1 : threads; }
  int thread_count() const { return thread_count_; }

  /// Join-strategy override for served queries (default kAdaptive). The
  /// planner configuration is folded into the answer/plan cache keys, so
  /// entries never leak across configurations.
  void set_join_strategy(sparql::JoinStrategy strategy) {
    join_strategy_ = strategy;
  }
  sparql::JoinStrategy join_strategy() const { return join_strategy_; }

  /// Planner-v2 DP join ordering for served queries (default off); see
  /// Executor::set_use_dp. Folded into the cache keys like the strategy.
  void set_use_dp(bool on) { use_dp_ = on; }
  bool use_dp() const { return use_dp_; }

  /// Toggles predicate-granular cache invalidation (MVCC mode only;
  /// default on). Off: fills stamp a wildcard footprint, i.e. classic
  /// global-generation invalidation — the bench ablation baseline.
  void set_predicate_invalidation(bool on) { predicate_invalidation_ = on; }
  bool predicate_invalidation() const { return predicate_invalidation_; }
  bool mvcc_mode() const { return mvcc_ != nullptr; }
  rdf::MvccGraph* mvcc() const { return mvcc_; }
  /// Legacy-mode graph (null in MVCC mode — pin a snapshot instead). For
  /// plan-only paths (EXPLAIN) that bypass Query().
  rdf::Graph* base_graph() const { return graph_; }

  const LatencyProfile& profile() const { return profile_; }
  size_t queries_served() const;
  size_t cache_hits() const;
  /// Drops every answer- and plan-cache entry and zeroes the hit counters,
  /// so hit-rate math after a clear starts from scratch.
  void ClearCache();

  /// Replaces the answer cache (and the derived plan cache) with freshly
  /// configured, empty ones. Not synchronized against in-flight queries —
  /// configure before serving traffic.
  void set_cache_options(CacheOptions opts);
  CacheOptions cache_options() const { return cache_opts_; }
  bool cache_enabled() const { return answer_cache_->enabled(); }
  /// Counters of the two cache layers (hits/misses/evictions/
  /// invalidations/residency). Cumulative until ClearCache().
  CacheStats answer_cache_stats() const { return answer_cache_->Stats(); }
  CacheStats plan_cache_stats() const { return plan_cache_->Stats(); }

  /// Every successfully served query, in order. Not synchronized — read it
  /// only once concurrent queries have drained.
  const std::vector<QueryLogEntry>& log() const { return log_; }
  /// Aggregates over the log and the shed/timeout/cancel counters (empty
  /// log -> zeroed latency fields).
  EndpointStats Stats() const;

  /// When set, every served query gets a span tracer attached (unless the
  /// caller's context already carries one) and its Chrome trace-event JSON
  /// is written to `dir/query-<seq>.json`. Empty (the default) disables
  /// per-query trace files.
  void set_trace_dir(std::string dir);
  /// When set, one structured JSON line per query (hash, outcome, timing,
  /// ExecStats, trace file ref) is appended to `path`.
  void set_query_log_path(const std::string& path);
  const QueryLog* structured_log() const { return query_log_.get(); }

  /// Slow-query capture: any served query whose total time (execution plus
  /// modeled overheads and queueing) crosses `threshold_ms` dumps its full
  /// forensic record — query head, outcome, ExecStats, plan shapes, and the
  /// nested operator profile — into `dir/slow-<k>.json`, a bounded ring of
  /// `max_files` files. Enabling this also attaches a tracer to every served
  /// query (like set_trace_dir) so captures always carry a profile. Empty
  /// dir disables. Configure before serving traffic.
  void set_slow_query_capture(std::string dir, double threshold_ms,
                              int max_files = 32);
  const SlowQueryCapturer* slow_query_capturer() const {
    return slow_capturer_.get();
  }

 private:
  double SimulatedNetworkMs(const std::string& sparql);  // callers hold mu_
  void ReleaseSlot();
  void RecordOutcome(const Status& status);

  rdf::Graph* graph_;              ///< legacy mode (null in MVCC mode)
  rdf::MvccGraph* mvcc_ = nullptr; ///< MVCC mode (null in legacy mode)
  bool predicate_invalidation_ = true;
  LatencyProfile profile_;
  int thread_count_ = 1;
  sparql::JoinStrategy join_strategy_ = sparql::JoinStrategy::kAdaptive;
  bool use_dp_ = false;

  /// Cache layers. Internally synchronized (sharded locks); the unique_ptrs
  /// themselves are only replaced by set_cache_options, which must not race
  /// with queries. The plan cache is gated by the same enablement knob so a
  /// cache-off endpoint is a true no-reuse baseline.
  CacheOptions cache_opts_;
  std::unique_ptr<LruCache<sparql::ResultTable>> answer_cache_;
  std::unique_ptr<sparql::PlanCache> plan_cache_;

  /// Guards the service state: log, counters, jitter stream. Never held
  /// together with adm_mu_.
  mutable std::mutex mu_;
  std::vector<QueryLogEntry> log_;
  size_t queries_served_ = 0;
  size_t cache_hits_ = 0;
  size_t shed_count_ = 0;
  size_t timeout_count_ = 0;
  size_t cancelled_count_ = 0;
  uint64_t jitter_state_ = 0x9E3779B97F4A7C15ull;

  /// Observability sinks (guarded by mu_ for configuration; QueryLog is
  /// internally synchronized for writes).
  std::string trace_dir_;
  int64_t trace_seq_ = 0;
  std::unique_ptr<QueryLog> query_log_;
  std::unique_ptr<SlowQueryCapturer> slow_capturer_;

  /// Admission state: bounded in-flight count plus a FIFO ticket queue.
  mutable std::mutex adm_mu_;
  std::condition_variable adm_cv_;
  AdmissionOptions admission_;
  size_t in_flight_ = 0;
  std::deque<uint64_t> adm_queue_;
  uint64_t next_ticket_ = 0;
};

}  // namespace rdfa::endpoint

#endif  // RDFA_ENDPOINT_ENDPOINT_H_
