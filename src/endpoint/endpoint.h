#ifndef RDFA_ENDPOINT_ENDPOINT_H_
#define RDFA_ENDPOINT_ENDPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "sparql/exec_stats.h"
#include "sparql/result_table.h"

namespace rdfa::endpoint {

/// Deterministic latency model of a remote SPARQL endpoint. The paper's
/// efficiency experiments (Tables 6.1/6.2) measured a live endpoint at peak
/// and off-peak hours; we reproduce the *shape* of that contrast with a
/// modeled endpoint: total time = execution time x load multiplier +
/// simulated network round-trip. No sleeping is involved — execution time
/// is really measured, the remote overheads are modeled (see DESIGN.md
/// substitution table).
struct LatencyProfile {
  std::string name;
  double load_multiplier = 1.0;   ///< endpoint contention slows service
  double network_base_ms = 0;     ///< round-trip floor
  double network_jitter_ms = 0;   ///< deterministic pseudo-random jitter amp

  /// Peak hours: busy endpoint, loaded network (§6.4 Table 6.1).
  static LatencyProfile Peak();
  /// Off-peak hours (Table 6.2).
  static LatencyProfile OffPeak();
  /// Local in-process evaluation (no modeled overhead).
  static LatencyProfile Local();
};

/// Timing breakdown of one endpoint query.
struct QueryResponse {
  sparql::ResultTable table;
  double exec_ms = 0;      ///< measured local evaluation time
  double network_ms = 0;   ///< modeled round-trip
  double total_ms = 0;     ///< exec * load_multiplier + network
  bool cache_hit = false;
  /// Engine-side execution statistics (join order, rows scanned, morsel
  /// count, per-stage wall time). Zeroed on cache hits — nothing executed.
  sparql::ExecStats exec_stats;
};

/// One served query, as kept in the endpoint's log.
struct QueryLogEntry {
  std::string query_head;  ///< first line of the query text
  double exec_ms = 0;
  double total_ms = 0;
  size_t rows = 0;
  bool cache_hit = false;
};

/// Aggregate statistics over the query log.
struct EndpointStats {
  size_t count = 0;
  double mean_exec_ms = 0;
  double max_exec_ms = 0;
  double p95_exec_ms = 0;
  double mean_total_ms = 0;
};

/// A SPARQL endpoint facade over the local engine with the latency model,
/// an optional answer cache (an ablation knob), and a query log.
class SimulatedEndpoint {
 public:
  SimulatedEndpoint(rdf::Graph* graph, LatencyProfile profile,
                    bool enable_cache = false);

  Result<QueryResponse> Query(const std::string& sparql);

  /// Morsel-parallelism budget for served queries (default 1 = serial).
  /// Parallel answers are byte-identical to serial ones, so the cache and
  /// the latency model are unaffected by this knob.
  void set_thread_count(int threads) { thread_count_ = threads < 1 ? 1 : threads; }
  int thread_count() const { return thread_count_; }

  const LatencyProfile& profile() const { return profile_; }
  size_t queries_served() const { return queries_served_; }
  size_t cache_hits() const { return cache_hits_; }
  void ClearCache() { cache_.clear(); }

  /// Every successfully served query, in order.
  const std::vector<QueryLogEntry>& log() const { return log_; }
  /// Aggregates over the log (empty log -> zeroed stats).
  EndpointStats Stats() const;

 private:
  double SimulatedNetworkMs(const std::string& sparql);

  rdf::Graph* graph_;
  LatencyProfile profile_;
  bool enable_cache_;
  int thread_count_ = 1;
  std::map<std::string, sparql::ResultTable> cache_;
  std::vector<QueryLogEntry> log_;
  size_t queries_served_ = 0;
  size_t cache_hits_ = 0;
  uint64_t jitter_state_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace rdfa::endpoint

#endif  // RDFA_ENDPOINT_ENDPOINT_H_
