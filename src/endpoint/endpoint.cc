#include "endpoint/endpoint.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/metrics.h"
#include "common/query_registry.h"
#include "common/trace.h"
#include "sparql/executor.h"
#include "sparql/footprint.h"
#include "sparql/parser.h"

namespace rdfa::endpoint {

LatencyProfile LatencyProfile::Peak() {
  LatencyProfile p;
  p.name = "peak";
  p.load_multiplier = 3.5;    // busy endpoint: queued behind other clients
  p.network_base_ms = 180.0;  // loaded network round-trip
  p.network_jitter_ms = 240.0;
  return p;
}

LatencyProfile LatencyProfile::OffPeak() {
  LatencyProfile p;
  p.name = "off-peak";
  p.load_multiplier = 1.0;
  p.network_base_ms = 60.0;
  p.network_jitter_ms = 40.0;
  return p;
}

LatencyProfile LatencyProfile::Local() {
  LatencyProfile p;
  p.name = "local";
  return p;
}

SimulatedEndpoint::SimulatedEndpoint(rdf::Graph* graph, LatencyProfile profile,
                                     bool enable_cache)
    : graph_(graph), profile_(std::move(profile)) {
  CacheOptions opts;
  opts.enabled = enable_cache;
  set_cache_options(opts);
}

SimulatedEndpoint::SimulatedEndpoint(rdf::MvccGraph* mvcc,
                                     LatencyProfile profile, bool enable_cache)
    : graph_(nullptr), mvcc_(mvcc), profile_(std::move(profile)) {
  CacheOptions opts;
  opts.enabled = enable_cache;
  set_cache_options(opts);
}

void SimulatedEndpoint::set_cache_options(CacheOptions opts) {
  cache_opts_ = opts;
  answer_cache_ = std::make_unique<LruCache<sparql::ResultTable>>(
      opts, "rdfa_endpoint_cache");
  CacheOptions plan_opts = sparql::PlanCache::DefaultOptions();
  plan_opts.enabled =
      opts.enabled && opts.max_bytes > 0 && opts.max_entries > 0;
  plan_cache_ = std::make_unique<sparql::PlanCache>(plan_opts);
}

double SimulatedEndpoint::SimulatedNetworkMs(const std::string& sparql) {
  if (profile_.network_base_ms == 0 && profile_.network_jitter_ms == 0) {
    return 0;
  }
  // xorshift over (query hash ^ running state): deterministic per call
  // sequence, so benchmark runs are reproducible.
  uint64_t h = std::hash<std::string>()(sparql);
  jitter_state_ ^= h;
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  double unit = static_cast<double>(jitter_state_ % 10000) / 10000.0;
  return profile_.network_base_ms + unit * profile_.network_jitter_ms;
}

namespace {
QueryLogEntry MakeLogEntry(const std::string& sparql,
                           const QueryResponse& resp) {
  QueryLogEntry entry;
  size_t newline = sparql.find('\n');
  entry.query_head = sparql.substr(0, newline);
  entry.exec_ms = resp.exec_ms;
  entry.total_ms = resp.total_ms;
  entry.queued_ms = resp.queued_ms;
  entry.rows = resp.table.num_rows();
  entry.cache_hit = resp.cache_hit;
  return entry;
}

const char* OutcomeName(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kResourceExhausted: return "shed";
    case StatusCode::kDeadlineExceeded: return "timed_out";
    case StatusCode::kCancelled: return "cancelled";
    default: return "error";
  }
}
}  // namespace

void SimulatedEndpoint::AdmissionSlot::Release() {
  if (endpoint_ != nullptr) {
    endpoint_->ReleaseSlot();
    endpoint_ = nullptr;
  }
}

void SimulatedEndpoint::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    --in_flight_;
  }
  adm_cv_.notify_all();
}

void SimulatedEndpoint::set_admission(AdmissionOptions opts) {
  std::lock_guard<std::mutex> lock(adm_mu_);
  admission_ = opts;
}

AdmissionOptions SimulatedEndpoint::admission() const {
  std::lock_guard<std::mutex> lock(adm_mu_);
  return admission_;
}

double SimulatedEndpoint::effective_timeout_ms() const {
  AdmissionOptions opts = admission();
  if (opts.base_timeout_ms <= 0) return 0;
  double mult = profile_.load_multiplier > 0 ? profile_.load_multiplier : 1.0;
  return opts.base_timeout_ms / mult;
}

Result<SimulatedEndpoint::AdmissionSlot> SimulatedEndpoint::Admit(
    const QueryContext& ctx, size_t* queue_depth) {
  double queued_ms = 0;
  std::unique_lock<std::mutex> lock(adm_mu_);
  if (in_flight_ >= admission_.max_in_flight || !adm_queue_.empty()) {
    auto entered = std::chrono::steady_clock::now();
    if (adm_queue_.size() >= admission_.max_queue) {
      if (queue_depth != nullptr) *queue_depth = adm_queue_.size();
      return Status::ResourceExhausted(
          "endpoint at capacity: " + std::to_string(in_flight_) +
          " in flight, " + std::to_string(adm_queue_.size()) + " queued");
    }
    uint64_t ticket = next_ticket_++;
    adm_queue_.push_back(ticket);
    // FIFO: run only as the queue head, and only once a slot frees up.
    // Bounded waits so a deadline/cancel from another thread is observed
    // even without a notification.
    while (adm_queue_.front() != ticket ||
           in_flight_ >= admission_.max_in_flight) {
      if (ctx.ShouldStop()) {
        adm_queue_.erase(
            std::find(adm_queue_.begin(), adm_queue_.end(), ticket));
        lock.unlock();
        adm_cv_.notify_all();
        return ctx.Check("admission-queue");
      }
      adm_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
    adm_queue_.pop_front();
    queued_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - entered)
                    .count();
  }
  ++in_flight_;
  AdmissionSlot slot;
  slot.endpoint_ = this;
  slot.queue_depth_ = adm_queue_.size();
  slot.queued_ms_ = queued_ms;
  if (queue_depth != nullptr) *queue_depth = adm_queue_.size();
  lock.unlock();
  adm_cv_.notify_all();  // another slot may still be free for the next head
  return slot;
}

void SimulatedEndpoint::RecordOutcome(const Status& status) {
  // Endpoint-level outcome counters carry their own metric names; the
  // engine's rdfa_queries_{cancelled,timed_out}_total tick inside
  // Executor::Execute, so a query that trips *while queued* (never
  // executed) is visible here and only here.
  MetricsRegistry& reg = MetricsRegistry::Global();
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      reg.GetCounter("rdfa_endpoint_shed_total",
                     "Queries rejected by admission control")
          .Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      reg.GetCounter("rdfa_endpoint_timed_out_total",
                     "Endpoint queries that tripped their budget")
          .Increment();
      break;
    case StatusCode::kCancelled:
      reg.GetCounter("rdfa_endpoint_cancelled_total",
                     "Endpoint queries cancelled by the caller")
          .Increment();
      break;
    default:
      break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (status.code()) {
    case StatusCode::kResourceExhausted: ++shed_count_; break;
    case StatusCode::kDeadlineExceeded: ++timeout_count_; break;
    case StatusCode::kCancelled: ++cancelled_count_; break;
    default: break;
  }
}

void SimulatedEndpoint::set_trace_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_dir_ = std::move(dir);
}

void SimulatedEndpoint::set_query_log_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  query_log_ = std::make_unique<QueryLog>(path);
}

void SimulatedEndpoint::set_slow_query_capture(std::string dir,
                                               double threshold_ms,
                                               int max_files) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_capturer_ = std::make_unique<SlowQueryCapturer>(std::move(dir),
                                                       threshold_ms, max_files);
}

size_t SimulatedEndpoint::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_served_;
}

size_t SimulatedEndpoint::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

void SimulatedEndpoint::ClearCache() {
  // Both cache layers drop their entries and local stats; the endpoint's
  // own hit counter resets too, so hit-rate math after a clear is sound.
  answer_cache_->Clear();
  plan_cache_->Clear();
  std::lock_guard<std::mutex> lock(mu_);
  cache_hits_ = 0;
}

Result<QueryResponse> SimulatedEndpoint::Query(const std::string& sparql) {
  return Query(sparql, QueryContext());
}

Result<QueryResponse> SimulatedEndpoint::Query(const std::string& sparql,
                                               QueryContext ctx) {
  // Per-query budget from the profile: combined (min) with any deadline the
  // caller already set; cancel state stays shared with the caller's handle.
  double budget = effective_timeout_ms();
  if (budget > 0) ctx = ctx.ChildWithDeadlineMs(budget);

  QueryResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_served_;
    // With a trace directory (or slow-query capture) configured, every
    // served query is traced; a tracer the caller attached themselves takes
    // precedence.
    const bool want_tracer =
        !trace_dir_.empty() ||
        (slow_capturer_ != nullptr && slow_capturer_->enabled());
    if (want_tracer && ctx.tracer() == nullptr) {
      ctx.set_tracer(std::make_shared<Tracer>());
    }
  }
  std::shared_ptr<Tracer> tracer = ctx.shared_tracer();

  // Set once the execution graph is known ("heap" / "mmap"); read by the
  // finish lambda below when it builds the structured log record.
  std::string storage_backend;

  // Flushes the per-query trace file, the structured query-log line, and —
  // over the slow-query threshold — a forensic capture file. Called on
  // every exit path, including error-arm returns, so aborted and shed
  // queries still leave a well-formed trace.
  auto finish = [&](const Status& status) {
    std::string trace_path;
    QueryLog* qlog = nullptr;
    SlowQueryCapturer* capturer = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      qlog = query_log_.get();
      capturer = slow_capturer_.get();
      if (tracer != nullptr && !trace_dir_.empty()) {
        trace_path = WriteTraceFile(trace_dir_, "query", trace_seq_++,
                                    tracer->ToChromeJson());
      }
    }
    const bool log_on = qlog != nullptr && qlog->enabled();
    const bool capture_on = capturer != nullptr && capturer->enabled();
    if (log_on || capture_on) {
      QueryLogRecord rec;
      rec.query_hash = HashQueryText(sparql);
      rec.query_head = sparql.substr(0, std::min<size_t>(sparql.size(), 60));
      rec.outcome = OutcomeName(status);
      rec.total_ms = resp.total_ms;
      rec.queued_ms = resp.queued_ms;
      rec.rows = static_cast<int64_t>(resp.table.num_rows());
      rec.cache_hit = resp.cache_hit;
      if (!resp.cache_hit && status.code() != StatusCode::kResourceExhausted) {
        rec.exec_stats_json = resp.exec_stats.ToJson();
        for (char c : resp.exec_stats.join_strategy) {
          if (!rec.join_strategies.empty()) rec.join_strategies += ",";
          switch (c) {
            case 'S': rec.join_strategies += "seed"; break;
            case 'M': rec.join_strategies += "merge"; break;
            case 'H': rec.join_strategies += "hash"; break;
            case 'N': rec.join_strategies += "nested-loop"; break;
            default: rec.join_strategies += c; break;
          }
        }
        rec.dp_used = resp.exec_stats.dp_plans > 0;
        rec.sieve_builds = static_cast<int64_t>(resp.exec_stats.sieve_keys);
        rec.merge_joins = static_cast<int64_t>(resp.exec_stats.merge_joins);
      }
      rec.storage_backend = storage_backend;
      rec.trace_file = trace_path;
      if (tracer != nullptr) rec.profile_json = tracer->ProfileJson();
      if (log_on) qlog->Write(rec);
      if (capture_on) {
        std::string path =
            capturer->MaybeCapture(resp.total_ms, FormatQueryLogLine(rec));
        if (!path.empty()) {
          MetricsRegistry::Global()
              .GetCounter("rdfa_slow_query_captures_total",
                          "Queries captured by the slow-query ring")
              .Increment();
        }
      }
    }
    QueryRegistry::Global().UpdateStageGauges();
  };

  std::optional<TraceSpan> adm_span;
  adm_span.emplace(tracer.get(), "admission-queue");
  Result<AdmissionSlot> admitted = Admit(ctx, &resp.queue_depth);
  adm_span->Arg("queue_depth", static_cast<uint64_t>(resp.queue_depth));
  adm_span->Arg("admitted", admitted.ok());
  adm_span.reset();
  if (!admitted.ok()) {
    // Admission outcomes (shed, expired/cancelled while queued) are part of
    // the service protocol, not transport failures: report them in-band.
    resp.status = admitted.status();
    RecordOutcome(resp.status);
    finish(resp.status);
    return resp;
  }
  AdmissionSlot slot = std::move(admitted).value();
  resp.queued_ms = slot.queued_ms();
  MetricsRegistry::Global()
      .GetHistogram("rdfa_endpoint_queued_ms", Histogram::LatencyBoundsMs(),
                    "Admission-queue wait in milliseconds")
      .Observe(resp.queued_ms);

  // MVCC mode: pin the current snapshot for the whole query. The pin keeps
  // the version alive across later commits; no graph lock is held while the
  // query parses or executes.
  rdf::MvccGraph::Pin pin;
  rdf::Graph* g = graph_;
  if (mvcc_ != nullptr) {
    pin = mvcc_->Snapshot();
    g = pin.graph.get();
  }
  storage_backend = g->mapped() != nullptr ? "mmap" : "heap";

  // Live in-flight registry: visible to `ps`/`kill` and the
  // rdfa_inflight_queries gauges until the handle releases the slot on any
  // exit path. Registration attaches relaxed progress counters to `ctx`, so
  // the executor's stage checks and row counts are sampled lock-free.
  QueryRegistry::Handle inflight = QueryRegistry::Global().Register(
      &ctx, sparql, HashQueryText(sparql), mvcc_ != nullptr ? pin.epoch : 0);
  QueryRegistry::Global().UpdateStageGauges();

  // Stamp-checked cache lookup. Legacy mode stamps with the global
  // generation read *before* execution; MVCC mode validates each entry
  // against FootprintStamp(entry.footprint) on the pinned snapshot, so only
  // a commit that touched one of the entry's predicates invalidates it.
  const bool cache_on = answer_cache_->enabled();
  std::string fingerprint;
  uint64_t query_hash = 0;
  uint64_t generation = 0;
  const auto stamp_fn = [g](const CacheFootprint& fp) {
    return g->FootprintStamp(fp);
  };
  if (cache_on) {
    fingerprint = NormalizeQueryText(sparql);
    // Planner configuration shapes both the cached plan's join orders and
    // (via row order) the answer bytes; non-default configurations get
    // their own cache slots. The default config keeps the legacy
    // fingerprint so mixed-mode deployments still share those entries.
    if (join_strategy_ != sparql::JoinStrategy::kAdaptive || use_dp_) {
      fingerprint += "\n#planner-cfg:" +
                     std::to_string(static_cast<int>(join_strategy_)) +
                     (use_dp_ ? ":dp" : "");
    }
    query_hash = sparql::PlanCache::ConfigKey(HashQueryText(fingerprint),
                                              join_strategy_, use_dp_,
                                              /*calibrated=*/true);
    generation = g->Generation();
    TraceSpan cache_span(tracer.get(), "cache-lookup");
    cache_span.Arg("generation", generation);
    std::shared_ptr<const sparql::ResultTable> hit =
        mvcc_ != nullptr ? answer_cache_->Get(fingerprint, stamp_fn)
                         : answer_cache_->Get(fingerprint, generation);
    cache_span.Arg("hit", hit != nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      resp.network_ms = SimulatedNetworkMs(sparql);
      if (hit != nullptr) {
        ++cache_hits_;
        resp.table = *hit;
        resp.cache_hit = true;
        resp.exec_ms = 0;
        resp.total_ms = resp.network_ms + resp.queued_ms;
        log_.push_back(MakeLogEntry(sparql, resp));
      }
    }
    if (resp.cache_hit) {
      finish(Status::OK());
      return resp;
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    resp.network_ms = SimulatedNetworkMs(sparql);
  }

  auto start = std::chrono::steady_clock::now();
  // Plan-cache lookup (same generation stamp: the cached BGP orders came
  // from that generation's statistics). A hit skips the parse and replays
  // the recorded join orders; a miss parses and captures them for reuse.
  std::shared_ptr<const sparql::PlanEntry> plan;
  if (cache_on) {
    plan = mvcc_ != nullptr ? plan_cache_->Get(query_hash, stamp_fn)
                            : plan_cache_->Get(query_hash, generation);
  }
  sparql::ParsedQuery parsed_local;
  sparql::PlanEntry fresh_plan;
  const sparql::ParsedQuery* query = nullptr;
  if (plan != nullptr) {
    resp.plan_cache_hit = true;
    query = &plan->ast;
  } else {
    std::optional<TraceSpan> parse_span;
    parse_span.emplace(tracer.get(), "parse");
    Result<sparql::ParsedQuery> parsed = sparql::ParseQuery(sparql);
    parse_span.reset();
    if (!parsed.ok()) {
      finish(parsed.status());
      return parsed.status();
    }
    parsed_local = std::move(parsed).value();
    query = &parsed_local;
  }
  // The fill stamp. MVCC mode stamps with the footprint's per-predicate
  // epoch sum on the pinned snapshot (wildcard when the ablation knob is
  // off); legacy mode keeps the pre-execution global generation.
  CacheFootprint footprint = CacheFootprint::Wildcard();
  uint64_t fill_stamp = generation;
  if (cache_on && mvcc_ != nullptr) {
    if (predicate_invalidation_) {
      footprint =
          plan != nullptr ? plan->footprint : sparql::FootprintOf(*query);
    }
    fill_stamp = g->FootprintStamp(footprint);
  }
  sparql::Executor exec(g);
  exec.set_thread_count(thread_count_);
  exec.set_join_strategy(join_strategy_);
  exec.set_use_dp(use_dp_);
  exec.set_query_context(ctx);
  if (plan != nullptr) {
    exec.ReplayJoinOrders(&plan->bgp_orders);
  } else if (cache_on) {
    exec.CaptureJoinOrders(&fresh_plan.bgp_orders);
  }
  Result<sparql::ResultTable> table = exec.Execute(*query);
  resp.exec_stats = exec.stats();
  auto end = std::chrono::steady_clock::now();
  resp.exec_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  resp.total_ms = resp.exec_ms * profile_.load_multiplier + resp.network_ms +
                  resp.queued_ms;
  if (!table.ok()) {
    StatusCode code = table.status().code();
    if (code != StatusCode::kDeadlineExceeded &&
        code != StatusCode::kCancelled) {
      finish(table.status());
      return table.status();  // genuine engine failure
    }
    // Budget tripped mid-execution: empty table, partial exec_stats.
    resp.status = table.status();
    RecordOutcome(resp.status);
    {
      std::lock_guard<std::mutex> lock(mu_);
      log_.push_back(MakeLogEntry(sparql, resp));
    }
    finish(resp.status);
    return resp;
  }
  resp.table = std::move(table).value();
  // Fill only on a successful, unambiguous run: error/cancel paths returned
  // above (no poisoned entries), and a generation that moved mid-execution
  // (legacy mode: a contract violation — mutation requires exclusive
  // access — but cheap to defend against) skips the fill rather than
  // stamping a lie. In MVCC mode the pin is immutable, so this check is
  // trivially true; a fill racing a commit is still safe because the stamp
  // travels with the entry — per-predicate epochs only grow, so a stale
  // fill can never alias the head snapshot's stamp.
  if (cache_on && g->Generation() == generation) {
    answer_cache_->Put(fingerprint, fill_stamp, resp.table,
                       resp.table.ApproxBytes(), footprint);
    if (plan == nullptr) {
      fresh_plan.ast = *query;
      fresh_plan.footprint = footprint;
      plan_cache_->Put(query_hash, fill_stamp, std::move(fresh_plan));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back(MakeLogEntry(sparql, resp));
  }
  finish(Status::OK());
  return resp;
}

namespace {
double Percentile(const std::vector<double>& sorted, double q) {
  size_t idx =
      static_cast<size_t>(static_cast<double>(sorted.size() - 1) * q);
  return sorted[idx];
}
}  // namespace

EndpointStats SimulatedEndpoint::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats stats;
  stats.count = log_.size();
  stats.shed = shed_count_;
  stats.timed_out = timeout_count_;
  stats.cancelled = cancelled_count_;
  if (log_.empty()) return stats;
  std::vector<double> execs;
  std::vector<double> totals;
  std::vector<double> queued;
  execs.reserve(log_.size());
  totals.reserve(log_.size());
  queued.reserve(log_.size());
  for (const QueryLogEntry& e : log_) {
    stats.mean_exec_ms += e.exec_ms;
    stats.mean_total_ms += e.total_ms;
    stats.max_exec_ms = std::max(stats.max_exec_ms, e.exec_ms);
    execs.push_back(e.exec_ms);
    totals.push_back(e.total_ms);
    queued.push_back(e.queued_ms);
  }
  stats.mean_exec_ms /= static_cast<double>(log_.size());
  stats.mean_total_ms /= static_cast<double>(log_.size());
  std::sort(execs.begin(), execs.end());
  std::sort(totals.begin(), totals.end());
  std::sort(queued.begin(), queued.end());
  stats.p95_exec_ms = Percentile(execs, 0.95);
  stats.p50_total_ms = Percentile(totals, 0.50);
  stats.p99_total_ms = Percentile(totals, 0.99);
  stats.p50_queued_ms = Percentile(queued, 0.50);
  stats.p99_queued_ms = Percentile(queued, 0.99);
  return stats;
}

}  // namespace rdfa::endpoint
