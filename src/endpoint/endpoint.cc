#include "endpoint/endpoint.h"

#include <algorithm>
#include <chrono>

#include "sparql/executor.h"
#include "sparql/parser.h"

namespace rdfa::endpoint {

LatencyProfile LatencyProfile::Peak() {
  LatencyProfile p;
  p.name = "peak";
  p.load_multiplier = 3.5;    // busy endpoint: queued behind other clients
  p.network_base_ms = 180.0;  // loaded network round-trip
  p.network_jitter_ms = 240.0;
  return p;
}

LatencyProfile LatencyProfile::OffPeak() {
  LatencyProfile p;
  p.name = "off-peak";
  p.load_multiplier = 1.0;
  p.network_base_ms = 60.0;
  p.network_jitter_ms = 40.0;
  return p;
}

LatencyProfile LatencyProfile::Local() {
  LatencyProfile p;
  p.name = "local";
  return p;
}

SimulatedEndpoint::SimulatedEndpoint(rdf::Graph* graph, LatencyProfile profile,
                                     bool enable_cache)
    : graph_(graph), profile_(std::move(profile)), enable_cache_(enable_cache) {}

double SimulatedEndpoint::SimulatedNetworkMs(const std::string& sparql) {
  if (profile_.network_base_ms == 0 && profile_.network_jitter_ms == 0) {
    return 0;
  }
  // xorshift over (query hash ^ running state): deterministic per call
  // sequence, so benchmark runs are reproducible.
  uint64_t h = std::hash<std::string>()(sparql);
  jitter_state_ ^= h;
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  double unit = static_cast<double>(jitter_state_ % 10000) / 10000.0;
  return profile_.network_base_ms + unit * profile_.network_jitter_ms;
}

namespace {
QueryLogEntry MakeLogEntry(const std::string& sparql,
                           const QueryResponse& resp) {
  QueryLogEntry entry;
  size_t newline = sparql.find('\n');
  entry.query_head = sparql.substr(0, newline);
  entry.exec_ms = resp.exec_ms;
  entry.total_ms = resp.total_ms;
  entry.rows = resp.table.num_rows();
  entry.cache_hit = resp.cache_hit;
  return entry;
}
}  // namespace

Result<QueryResponse> SimulatedEndpoint::Query(const std::string& sparql) {
  ++queries_served_;
  QueryResponse resp;
  resp.network_ms = SimulatedNetworkMs(sparql);

  if (enable_cache_) {
    auto it = cache_.find(sparql);
    if (it != cache_.end()) {
      ++cache_hits_;
      resp.table = it->second;
      resp.cache_hit = true;
      resp.exec_ms = 0;
      resp.total_ms = resp.network_ms;
      log_.push_back(MakeLogEntry(sparql, resp));
      return resp;
    }
  }

  auto start = std::chrono::steady_clock::now();
  RDFA_ASSIGN_OR_RETURN(sparql::ParsedQuery parsed, sparql::ParseQuery(sparql));
  sparql::Executor exec(graph_);
  exec.set_thread_count(thread_count_);
  Result<sparql::ResultTable> table = exec.Execute(parsed);
  resp.exec_stats = exec.stats();
  RDFA_RETURN_NOT_OK(table.status());
  resp.table = std::move(table).value();
  auto end = std::chrono::steady_clock::now();
  resp.exec_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  resp.total_ms = resp.exec_ms * profile_.load_multiplier + resp.network_ms;
  if (enable_cache_) cache_[sparql] = resp.table;
  log_.push_back(MakeLogEntry(sparql, resp));
  return resp;
}

EndpointStats SimulatedEndpoint::Stats() const {
  EndpointStats stats;
  stats.count = log_.size();
  if (log_.empty()) return stats;
  std::vector<double> execs;
  execs.reserve(log_.size());
  for (const QueryLogEntry& e : log_) {
    stats.mean_exec_ms += e.exec_ms;
    stats.mean_total_ms += e.total_ms;
    stats.max_exec_ms = std::max(stats.max_exec_ms, e.exec_ms);
    execs.push_back(e.exec_ms);
  }
  stats.mean_exec_ms /= static_cast<double>(log_.size());
  stats.mean_total_ms /= static_cast<double>(log_.size());
  std::sort(execs.begin(), execs.end());
  size_t idx = static_cast<size_t>(
      static_cast<double>(execs.size() - 1) * 0.95);
  stats.p95_exec_ms = execs[idx];
  return stats;
}

}  // namespace rdfa::endpoint
