#include "common/query_log.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"

namespace rdfa {

uint64_t HashQueryText(const std::string& text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  char quote = 0;        // the active string delimiter, 0 outside literals
  bool escaped = false;  // previous char was a backslash inside a literal
  bool pending_space = false;
  for (char c : text) {
    if (quote != 0) {
      out.push_back(c);
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == quote) {
        quote = 0;
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      pending_space = true;
      continue;
    }
    if (pending_space) {
      if (!out.empty()) out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'' || c == '"') quote = c;
  }
  return out;
}

std::string FormatQueryLogLine(const QueryLogRecord& rec) {
  char buf[64];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"query_hash\":\"%016llx\"",
                static_cast<unsigned long long>(rec.query_hash));
  out += buf;
  if (!rec.query_head.empty()) {
    out += ",\"query\":\"" + JsonEscape(rec.query_head) + "\"";
  }
  out += ",\"outcome\":\"" + JsonEscape(rec.outcome) + "\"";
  std::snprintf(buf, sizeof(buf), ",\"total_ms\":%.3f,\"queued_ms\":%.3f",
                rec.total_ms, rec.queued_ms);
  out += buf;
  out += ",\"rows\":" + std::to_string(rec.rows);
  out += ",\"cache_hit\":";
  out += rec.cache_hit ? "true" : "false";
  if (!rec.exec_stats_json.empty()) {
    // Already a JSON object — embedded verbatim, not re-escaped.
    out += ",\"exec_stats\":" + rec.exec_stats_json;
  }
  if (!rec.trace_file.empty()) {
    out += ",\"trace_file\":\"" + JsonEscape(rec.trace_file) + "\"";
  }
  if (!rec.join_strategies.empty()) {
    out += ",\"join_strategies\":\"" + JsonEscape(rec.join_strategies) + "\"";
  }
  out += ",\"dp_used\":";
  out += rec.dp_used ? "true" : "false";
  out += ",\"sieve_builds\":" + std::to_string(rec.sieve_builds);
  out += ",\"merge_joins\":" + std::to_string(rec.merge_joins);
  if (!rec.storage_backend.empty()) {
    out += ",\"storage_backend\":\"" + JsonEscape(rec.storage_backend) + "\"";
  }
  if (!rec.profile_json.empty()) {
    // Already a JSON array — embedded verbatim, not re-escaped.
    out += ",\"profile\":" + rec.profile_json;
  }
  out += "}";
  return out;
}

bool QueryLog::Write(const QueryLogRecord& rec) {
  if (path_.empty()) return false;
  std::string line = FormatQueryLogLine(rec);
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::app);
  if (!out) return false;
  out << line << "\n";
  ++lines_;
  return true;
}

int64_t QueryLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

std::string WriteTraceFile(const std::string& dir, const std::string& stem,
                           int64_t seq, const std::string& json) {
  if (dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  std::string path =
      dir + "/" + stem + "-" + std::to_string(seq) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << json;
  return path;
}

std::string SlowQueryCapturer::MaybeCapture(double total_ms,
                                            const std::string& json) {
  if (dir_.empty() || total_ms < threshold_ms_) return "";
  const int64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return "";
  std::string path =
      dir_ + "/slow-" + std::to_string(seq % max_files_) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  out << json;
  return path;
}

}  // namespace rdfa
