#ifndef RDFA_COMMON_METRICS_H_
#define RDFA_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rdfa {

namespace metrics_internal {

/// Number of cache-line-padded shards behind every counter/histogram. Each
/// thread hashes to one shard (a thread-local ordinal, so a thread always
/// hits the same shard), turning the hot-path increment into one relaxed
/// atomic add with no cross-core contention. Reads sum all shards.
constexpr size_t kShards = 8;

size_t ThisThreadShard();

struct alignas(64) ShardedU64 {
  std::atomic<uint64_t> v{0};
};

/// Relaxed-CAS double accumulator (atomic<double>::fetch_add is C++20 but
/// spotty across toolchains; the CAS loop is portable and contention-free
/// once sharded).
struct alignas(64) ShardedF64 {
  std::atomic<double> v{0};
  void Add(double d) {
    double cur = v.load(std::memory_order_relaxed);
    while (!v.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace metrics_internal

/// Monotonically increasing counter. Increment is one relaxed atomic add on
/// a per-thread shard; Value() sums shards (reads may momentarily trail
/// concurrent writers, as Prometheus counters always do).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    shards_[metrics_internal::ThisThreadShard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  metrics_internal::ShardedU64 shards_[metrics_internal::kShards];
};

/// Last-write-wins instantaneous value (queue depth, in-flight count).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram in the Prometheus shape: per-bucket counts keyed
/// by inclusive upper bounds, plus running sum and count. Observe() is two
/// relaxed shard updates and one branchless-ish bucket search (the bound
/// list is a handful of entries). Bucket bounds are fixed at construction —
/// re-registering a name with different bounds keeps the first set.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf
  /// overflow bucket at the end.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

  /// Default latency bounds (milliseconds), log-spaced 0.25ms..8s.
  static std::vector<double> LatencyBoundsMs();

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  /// counts_[shard * (bounds+1) + bucket]
  std::vector<metrics_internal::ShardedU64> counts_;
  metrics_internal::ShardedU64 count_[metrics_internal::kShards];
  metrics_internal::ShardedF64 sum_[metrics_internal::kShards];
};

/// Process-wide registry of named metrics, exposed as Prometheus text
/// format and as one JSON object. Registration (Get*) takes a mutex —
/// callers on hot paths look a metric up once and keep the reference
/// (references are stable for the registry's lifetime). Names follow the
/// Prometheus convention: `rdfa_<noun>_<unit or total>`; see DESIGN.md §10
/// for the scheme.
class MetricsRegistry {
 public:
  /// The process-wide registry the engine records into.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  /// `bounds` is consulted only on first registration of `name`.
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// Labeled children of a metric family: one series per (label key, label
  /// value) pair, e.g. GetGaugeLabeled("rdfa_inflight_queries_by_stage",
  /// "stage", "bgp-join", ...). The label value is escaped per the
  /// Prometheus text format (backslash, double quote, newline); HELP/TYPE
  /// are emitted once per family. References are stable like the unlabeled
  /// Get* forms, but each call re-renders the series name — hot paths
  /// should cache the reference.
  Counter& GetCounterLabeled(const std::string& family,
                             const std::string& label_key,
                             const std::string& label_value,
                             const std::string& help = "");
  Gauge& GetGaugeLabeled(const std::string& family,
                         const std::string& label_key,
                         const std::string& label_value,
                         const std::string& help = "");

  /// Escapes a label value per the Prometheus text exposition format:
  /// backslash, double quote and newline become \\, \" and \n.
  static std::string EscapeLabelValue(const std::string& v);
  /// The canonical series name `family{key="escaped value"}`.
  static std::string LabeledName(const std::string& family,
                                 const std::string& label_key,
                                 const std::string& label_value);

  /// Looks a metric up without registering; null when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Prometheus text exposition format, metrics in name order:
  /// # HELP / # TYPE comments, `name value` samples, histogram
  /// `_bucket{le="..."}` (cumulative) / `_sum` / `_count` series.
  std::string PrometheusText() const;

  /// The same state as one JSON object keyed by metric name.
  std::string ToJson() const;

  /// Zeroes every registered metric (registrations persist). For tests
  /// that assert exact counts; not meant for production use.
  void ResetForTest();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace rdfa

#endif  // RDFA_COMMON_METRICS_H_
