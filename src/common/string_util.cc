#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rdfa {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string EscapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      default:
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string out(buf);
  // Strip trailing zeros but keep at least one decimal digit.
  size_t dot = out.find('.');
  if (dot != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace rdfa
