#ifndef RDFA_COMMON_STATUS_H_
#define RDFA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace rdfa {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: no exceptions cross the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< A parser (Turtle, SPARQL, HIFUN) rejected its input.
  kNotFound,          ///< A term, facet, or state id does not exist.
  kTypeError,         ///< An expression was evaluated over incompatible types.
  kUnsupported,       ///< Feature outside the implemented SPARQL/HIFUN subset.
  kPrecondition,      ///< HIFUN prerequisite violated (e.g. non-functional attr).
  kInternal,          ///< Invariant violation; indicates a library bug.
  kDeadlineExceeded,  ///< The query's deadline tripped mid-execution.
  kCancelled,         ///< The query was cooperatively cancelled.
  kResourceExhausted, ///< Endpoint admission control shed the query.
};

/// Returns a short human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); errors carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Precondition(std::string msg) {
    return Status(StatusCode::kPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, the return type of fallible library functions.
template <typename T>
class Result {
 public:
  /// Implicit on purpose: `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors. Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    if (ok()) return std::get<T>(std::move(repr_));
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define RDFA_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::rdfa::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a Result expression; assigns the value to `lhs` or propagates
/// the error. `lhs` must be a declaration, e.g. `auto x`.
#define RDFA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define RDFA_ASSIGN_OR_RETURN(lhs, expr) \
  RDFA_ASSIGN_OR_RETURN_IMPL(RDFA_CONCAT_(_res_, __LINE__), lhs, expr)

#define RDFA_CONCAT_(a, b) RDFA_CONCAT_2_(a, b)
#define RDFA_CONCAT_2_(a, b) a##b

}  // namespace rdfa

#endif  // RDFA_COMMON_STATUS_H_
