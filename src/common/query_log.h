#ifndef RDFA_COMMON_QUERY_LOG_H_
#define RDFA_COMMON_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace rdfa {

/// One query's worth of structured log data. The producers (the simulated
/// endpoint and the interactive shell) fill what they know; empty string
/// fields are omitted from the emitted line.
struct QueryLogRecord {
  uint64_t query_hash = 0;     ///< FNV-1a of the full query text
  std::string query_head;      ///< first ~60 chars, for humans grepping logs
  std::string outcome;         ///< "ok", "cancelled", "deadline", "shed", ...
  double total_ms = 0;         ///< wall time including queueing
  double queued_ms = 0;        ///< time spent waiting for admission
  int64_t rows = 0;            ///< result rows (0 on failure)
  bool cache_hit = false;
  std::string exec_stats_json;  ///< ExecStats::ToJson() output, verbatim
  std::string trace_file;       ///< path of the Chrome trace, if one was written
  /// Comma-joined join strategies the BGP steps actually ran with
  /// ("merge,hash" etc.), from ExecStats::join_strategies. Empty when the
  /// query had no BGP joins.
  std::string join_strategies;
  bool dp_used = false;         ///< DP join ordering produced the plan order
  int64_t sieve_builds = 0;     ///< bitmap sieves built across BGP steps
  int64_t merge_joins = 0;      ///< merge-join steps executed
  std::string storage_backend;  ///< "heap" or "mmap" ("" when unknown)
  std::string profile_json;     ///< Tracer::ProfileJson(), embedded verbatim
};

/// FNV-1a 64-bit hash of the query text — stable across runs so the same
/// query can be correlated between log lines without storing the full text.
uint64_t HashQueryText(const std::string& text);

/// Whitespace-normalized cache fingerprint of a query: runs of whitespace
/// *outside* quoted literals collapse to one space and the ends are
/// trimmed, so reformattings of the same query share one cache entry.
/// Whitespace inside '...' / "..." strings (escapes respected) is kept
/// verbatim — two queries differing there are genuinely different queries
/// and must not collide.
std::string NormalizeQueryText(const std::string& text);

/// Renders `rec` as one self-contained JSON object (no trailing newline).
/// All strings pass through JsonEscape, so a query head with embedded
/// quotes or newlines cannot break the line-oriented format.
std::string FormatQueryLogLine(const QueryLogRecord& rec);

/// Append-only, thread-safe JSON-lines writer. Opening is lazy: the file is
/// created on the first Write, so constructing a QueryLog with an empty
/// path is a cheap disabled logger.
class QueryLog {
 public:
  QueryLog() = default;
  explicit QueryLog(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one line; returns false if the file could not be opened.
  bool Write(const QueryLogRecord& rec);

  /// Number of lines written so far.
  int64_t lines_written() const;

 private:
  std::string path_;
  mutable std::mutex mu_;
  int64_t lines_ = 0;
};

/// Writes `json` (a complete document, e.g. Tracer::ToChromeJson) to
/// `dir/<stem>-<seq>.json`, creating `dir` if needed. Returns the path
/// written, or empty string on failure.
std::string WriteTraceFile(const std::string& dir, const std::string& stem,
                           int64_t seq, const std::string& json);

/// Slow-query capture: queries whose wall time crosses a threshold get
/// their full forensic record (query + plan profile + trace + stats) dumped
/// as JSON into a bounded ring of files, `dir/slow-<k>.json` with
/// k = seq % max_files — old captures are overwritten, so the directory
/// never grows past max_files regardless of how pathological the workload
/// is. Thread-safe; a default-constructed capturer (empty dir) is disabled.
class SlowQueryCapturer {
 public:
  SlowQueryCapturer() = default;
  SlowQueryCapturer(std::string dir, double threshold_ms, int max_files)
      : dir_(std::move(dir)),
        threshold_ms_(threshold_ms),
        max_files_(max_files > 0 ? max_files : 1) {}

  bool enabled() const { return !dir_.empty(); }
  double threshold_ms() const { return threshold_ms_; }

  /// Writes `json` into the ring when `total_ms` crosses the threshold.
  /// Returns the path written, or empty when below threshold / disabled /
  /// the write failed.
  std::string MaybeCapture(double total_ms, const std::string& json);

  /// Captures written so far (for tests and the shell's `help`).
  int64_t captures() const { return seq_.load(std::memory_order_relaxed); }

 private:
  std::string dir_;
  double threshold_ms_ = 0;
  int max_files_ = 1;
  std::atomic<int64_t> seq_{0};
};

}  // namespace rdfa

#endif  // RDFA_COMMON_QUERY_LOG_H_
