#include "common/vbyte.h"

namespace rdfa {

void AppendVbyte(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VbyteLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

Status VbyteDecoder::Next(uint64_t* v) {
  uint64_t acc = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos_ >= size_) {
      return Status::ParseError("vbyte: truncated at byte " +
                                std::to_string(pos_));
    }
    const uint8_t b = static_cast<uint8_t>(data_[pos_++]);
    // The 10th byte may only carry the single remaining bit of a u64; any
    // higher payload bit (or a continuation bit) is an overlong encoding.
    if (i == 9 && b > 0x01) {
      return Status::ParseError("vbyte: overlong encoding at byte " +
                                std::to_string(pos_ - 1));
    }
    acc |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = acc;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::ParseError("vbyte: unterminated encoding");
}

void AppendDeltaVbyte(std::string* out, const std::vector<uint64_t>& sorted) {
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t v : sorted) {
    AppendVbyte(out, first ? v : v - prev);
    prev = v;
    first = false;
  }
}

Result<std::vector<uint64_t>> DecodeDeltaVbyte(std::string_view data,
                                               size_t count) {
  std::vector<uint64_t> out;
  out.reserve(count);
  VbyteDecoder dec(data);
  uint64_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    RDFA_RETURN_NOT_OK(dec.Next(&gap));
    acc = (i == 0) ? gap : acc + gap;
    out.push_back(acc);
  }
  return out;
}

}  // namespace rdfa
