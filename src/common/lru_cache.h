#ifndef RDFA_COMMON_LRU_CACHE_H_
#define RDFA_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/footprint.h"
#include "common/metrics.h"

namespace rdfa {

/// Capacity and enablement knobs shared by every cache in the engine (the
/// endpoint answer cache, the plan cache, the analytics roll-up cache).
/// Either capacity at 0 — or `enabled` false — turns the cache into a
/// store-nothing pass-through: every Get is a miss, every Put a no-op.
struct CacheOptions {
  size_t max_bytes = 64ull << 20;  ///< total payload budget across shards
  size_t max_entries = 4096;       ///< total entry budget across shards
  bool enabled = true;
  /// Lock shards. Keys hash to one shard; capacities divide evenly across
  /// them, so per-shard eviction keeps the totals bounded. Tests that
  /// assert exact global eviction order use shards = 1.
  size_t shards = 8;
};

/// Point-in-time counters of one cache. Hits/misses/evictions/invalidations
/// are cumulative since construction or the last Clear(); entries/bytes are
/// the current residency.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      ///< capacity-driven removals (LRU tail)
  uint64_t invalidations = 0;  ///< generation-mismatch lazy removals
  /// Pre-existing entries displaced by a Put under their key — overwritten
  /// by the fresh value, or dropped when an oversized value was rejected.
  /// Every removed entry ticks exactly one of evictions / invalidations /
  /// replacements (or entries dropped by Clear()), so residency deltas are
  /// always accounted for.
  uint64_t replacements = 0;
  size_t entries = 0;
  size_t bytes = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Thread-safe, byte-accounted LRU cache keyed by string.
///
/// Every entry carries the graph *generation* it was computed at. Get()
/// takes the caller's current generation and treats any entry stamped with
/// a different one as a miss, erasing it on the spot (lazy invalidation) —
/// so a mutation between fill and lookup can never surface a stale value.
/// Values are held behind shared_ptr<const V>: a hit hands out a reference
/// without copying under the lock, and an entry evicted while a reader
/// still holds the pointer stays alive for that reader.
///
/// Entries may carry a predicate *footprint* (common/footprint.h): the
/// stamp is then not the global generation but a footprint-specific value
/// (rdf::Graph::FootprintStamp), and the footprint-taking Get overload
/// recomputes the expected stamp from the *entry's own* footprint via a
/// caller-supplied function — so an entry survives mutations that touch
/// only predicates outside its footprint. Wildcard-footprint entries (the
/// default) behave exactly like the original global-generation protocol.
///
/// When `metric_prefix` is non-empty, the event counters also tick
/// `<prefix>_{hits,misses,evictions,invalidations,replacements}_total` in
/// the global MetricsRegistry (registered once, at construction). Those
/// registry counters are cumulative for the process — Clear() resets only
/// the cache-local stats, never the monotonic exported series.
template <typename V>
class LruCache {
 public:
  explicit LruCache(CacheOptions opts, const std::string& metric_prefix = "")
      : opts_(opts) {
    if (opts_.shards == 0) opts_.shards = 1;
    shards_ = std::vector<Shard>(opts_.shards);
    shard_bytes_ = opts_.max_bytes / opts_.shards;
    shard_entries_ = opts_.max_entries / opts_.shards;
    // Small totals must not round down to zero-capacity shards.
    if (opts_.max_bytes > 0 && shard_bytes_ == 0) shard_bytes_ = 1;
    if (opts_.max_entries > 0 && shard_entries_ == 0) shard_entries_ = 1;
    if (!metric_prefix.empty()) {
      metric_prefix_ = metric_prefix;
      MetricsRegistry& reg = MetricsRegistry::Global();
      m_hits_ = &reg.GetCounter(metric_prefix + "_hits_total",
                                "Cache hits (" + metric_prefix + ")");
      m_misses_ = &reg.GetCounter(metric_prefix + "_misses_total",
                                  "Cache misses (" + metric_prefix + ")");
      m_evictions_ =
          &reg.GetCounter(metric_prefix + "_evictions_total",
                          "Capacity evictions (" + metric_prefix + ")");
      m_invalidations_ = &reg.GetCounter(
          metric_prefix + "_invalidations_total",
          "Generation invalidations (" + metric_prefix + ")");
      m_replacements_ = &reg.GetCounter(
          metric_prefix + "_replacements_total",
          "Entries displaced by a Put under their key (" + metric_prefix +
              ")");
    }
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  bool enabled() const {
    return opts_.enabled && opts_.max_bytes > 0 && opts_.max_entries > 0;
  }
  const CacheOptions& options() const { return opts_; }

  /// Looks `key` up against the caller's current `generation`. Returns the
  /// cached value (refreshing its LRU position) only when the entry's
  /// stamped generation matches; a mismatched entry is erased and counted
  /// as an invalidation + miss.
  std::shared_ptr<const V> Get(const std::string& key, uint64_t generation) {
    return Get(key, [generation](const CacheFootprint&) { return generation; });
  }

  /// Footprint-validated lookup: `stamp_fn(entry.footprint)` recomputes the
  /// stamp the entry *would* get if stored now (typically
  /// graph->FootprintStamp(fp)); the entry is served only when it matches
  /// the stored one. The footprint lives in the entry because the caller
  /// cannot know a query's footprint before planning it — on a hit, the
  /// recorded footprint from fill time is exactly what must be validated.
  /// `stamp_fn` runs under the shard lock: it must be cheap and must not
  /// reenter the cache.
  template <typename StampFn,
            typename = std::enable_if_t<std::is_invocable_r_v<
                uint64_t, StampFn, const CacheFootprint&>>>
  std::shared_ptr<const V> Get(const std::string& key, StampFn&& stamp_fn) {
    if (!enabled()) return nullptr;
    Shard& shard = ShardFor(key);
    std::shared_ptr<const V> value;
    bool invalidated = false;
    CacheFootprint stale_fp;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it == shard.index.end()) {
        ++shard.misses;
      } else if (it->second->generation != stamp_fn(it->second->footprint)) {
        shard.bytes -= it->second->bytes;
        stale_fp = std::move(it->second->footprint);
        shard.lru.erase(it->second);
        shard.index.erase(it);
        ++shard.invalidations;
        ++shard.misses;
        invalidated = true;
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.hits;
        value = it->second->value;
      }
    }
    if (value != nullptr) {
      if (m_hits_ != nullptr) m_hits_->Increment();
    } else {
      if (m_misses_ != nullptr) m_misses_->Increment();
      if (invalidated && m_invalidations_ != nullptr) {
        m_invalidations_->Increment();
        // Predicate-granular attribution: which dependency went stale. A
        // wildcard footprint (global-generation entries) lands on "*".
        // Registry-map path, but invalidations are rare by construction.
        MetricsRegistry& reg = MetricsRegistry::Global();
        const std::string family =
            metric_prefix_ + "_invalidations_by_predicate_total";
        static const char* const kHelp =
            "Cache invalidations attributed to a stale footprint predicate";
        if (stale_fp.wildcard) {
          reg.GetCounterLabeled(family, "predicate", "*", kHelp).Increment();
        } else {
          for (const std::string& pred : stale_fp.predicates) {
            reg.GetCounterLabeled(family, "predicate", pred, kHelp)
                .Increment();
          }
        }
      }
    }
    return value;
  }

  /// Inserts (or replaces) `key` with a value stamped `generation` (a
  /// global generation, or a FootprintStamp when `footprint` is precise),
  /// accounted as `bytes`, evicting least-recently-used entries until the
  /// shard is back under both budgets. A value larger than a whole shard's
  /// byte budget is not stored (evicting everything still could not fit
  /// it); a pre-existing entry under the key is dropped either way, and
  /// counted as a *replacement* — so entries never vanish without ticking
  /// exactly one of evictions / invalidations / replacements.
  void Put(const std::string& key, uint64_t generation,
           std::shared_ptr<const V> value, size_t bytes,
           CacheFootprint footprint = CacheFootprint::Wildcard()) {
    if (!enabled() || value == nullptr) return;
    Shard& shard = ShardFor(key);
    uint64_t evicted = 0;
    bool replaced = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
        ++shard.replacements;
        replaced = true;
      }
      if (bytes <= shard_bytes_) {
        shard.lru.push_front(Entry{key, generation, std::move(value), bytes,
                                   std::move(footprint)});
        shard.index[key] = shard.lru.begin();
        shard.bytes += bytes;
        while (shard.bytes > shard_bytes_ ||
               shard.lru.size() > shard_entries_) {
          const Entry& tail = shard.lru.back();
          shard.bytes -= tail.bytes;
          shard.index.erase(tail.key);
          shard.lru.pop_back();
          ++evicted;
        }
        shard.evictions += evicted;
      }
    }
    if (evicted > 0 && m_evictions_ != nullptr) {
      m_evictions_->Increment(evicted);
    }
    if (replaced && m_replacements_ != nullptr) m_replacements_->Increment();
  }

  /// Convenience overload that takes ownership of a plain value.
  void Put(const std::string& key, uint64_t generation, V value, size_t bytes,
           CacheFootprint footprint = CacheFootprint::Wildcard()) {
    Put(key, generation, std::make_shared<const V>(std::move(value)), bytes,
        std::move(footprint));
  }

  /// Drops every entry and zeroes the cache-local stats, so hit-rate math
  /// restarts from a clean slate (exported registry counters, being
  /// monotonic, are left alone).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
      shard.bytes = 0;
      shard.hits = shard.misses = 0;
      shard.evictions = shard.invalidations = 0;
      shard.replacements = 0;
    }
  }

  CacheStats Stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.evictions += shard.evictions;
      total.invalidations += shard.invalidations;
      total.replacements += shard.replacements;
      total.entries += shard.lru.size();
      total.bytes += shard.bytes;
    }
    return total;
  }

 private:
  struct Entry {
    std::string key;
    uint64_t generation = 0;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
    CacheFootprint footprint;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t replacements = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>()(key) % shards_.size()];
  }

  CacheOptions opts_;
  std::string metric_prefix_;
  size_t shard_bytes_ = 0;
  size_t shard_entries_ = 0;
  std::vector<Shard> shards_;
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_invalidations_ = nullptr;
  Counter* m_replacements_ = nullptr;
};

}  // namespace rdfa

#endif  // RDFA_COMMON_LRU_CACHE_H_
