#ifndef RDFA_COMMON_VBYTE_H_
#define RDFA_COMMON_VBYTE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rdfa {

/// Variable-byte (LEB128-style) integer codec used by the RDFA3 snapshot
/// format. Each byte carries 7 payload bits, low group first; the high bit
/// marks continuation. A u64 therefore occupies 1..10 bytes, and small
/// values — the common case for difference-encoded posting lists — occupy
/// exactly one byte.
///
/// Decoding is strict: a truncated group (continuation bit set at the end
/// of input) and an overlong encoding (a 10th byte contributing more than
/// the single remaining bit) are both rejected with a typed ParseError, so
/// a corrupted or clipped snapshot section can never decode to garbage.

/// Appends the vbyte encoding of `v` to `out`.
void AppendVbyte(std::string* out, uint64_t v);

/// Number of bytes AppendVbyte would emit for `v` (1..10).
size_t VbyteLength(uint64_t v);

/// Incremental strict decoder over a byte span. The span must outlive the
/// decoder; no copy is taken (it can point straight into an mmap'd file).
class VbyteDecoder {
 public:
  VbyteDecoder(const char* data, size_t size) : data_(data), size_(size) {}
  explicit VbyteDecoder(std::string_view data)
      : VbyteDecoder(data.data(), data.size()) {}

  /// Decodes the next value. ParseError on truncation or overlong form.
  Status Next(uint64_t* v);

  /// Bytes consumed so far.
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Difference-encodes a non-decreasing u64 sequence: the first element raw,
/// every later element as the gap to its predecessor. The caller must pass
/// a sorted sequence; gaps are small, so posting lists compress to ~1 byte
/// per element.
void AppendDeltaVbyte(std::string* out, const std::vector<uint64_t>& sorted);

/// Decodes exactly `count` difference-encoded values appended by
/// AppendDeltaVbyte, re-accumulating the prefix sums. ParseError on any
/// truncated/overlong group or if the span holds fewer than `count` values.
Result<std::vector<uint64_t>> DecodeDeltaVbyte(std::string_view data,
                                               size_t count);

}  // namespace rdfa

#endif  // RDFA_COMMON_VBYTE_H_
