#ifndef RDFA_COMMON_THREAD_POOL_H_
#define RDFA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace rdfa {

/// A small fixed-size worker pool for data-parallel loops. ParallelFor is
/// the intended entry point: work items are claimed from a shared counter,
/// the submitting thread always participates, and the call returns only
/// when every item finished. Because the caller participates, a pool with
/// zero workers degenerates to serial execution and nested ParallelFor
/// calls cannot deadlock (a starved region is simply drained by its own
/// caller).
class ThreadPool {
 public:
  explicit ThreadPool(size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n); `fn` must be safe to call
  /// concurrently. At most `worker_count()` pool threads help; the caller
  /// runs items too. Item completion order is unspecified — callers that
  /// need determinism write into pre-sized per-item slots and combine in
  /// item order afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The process-wide pool. Sized to at least 3 workers even on small
  /// machines so a `threads=4` run exercises real concurrency everywhere.
  static ThreadPool& Shared();

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Splits [0, n) into at most `max_morsels` contiguous ranges of at least
/// `min_grain` items each, returned in order. The deterministic unit of
/// parallel work: results produced per morsel and concatenated in morsel
/// order reproduce the serial output exactly.
std::vector<std::pair<size_t, size_t>> Morsels(size_t n, size_t max_morsels,
                                               size_t min_grain);

}  // namespace rdfa

#endif  // RDFA_COMMON_THREAD_POOL_H_
