#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace rdfa {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t helpers = std::min(worker_count(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared per-region state: items are claimed from `next`; the region is
  // complete when `done` reaches n. The caller drains items too, so even if
  // every helper task is stuck behind other pool work the region finishes.
  struct Region {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto region = std::make_shared<Region>();
  region->n = n;
  region->fn = &fn;  // valid: the caller blocks until done == n

  auto work = [region] {
    for (;;) {
      size_t i = region->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= region->n) return;
      (*region->fn)(i);
      if (region->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region->n) {
        std::lock_guard<std::mutex> lock(region->mu);
        region->cv.notify_all();
      }
    }
  };
  for (size_t h = 0; h < helpers; ++h) Submit(work);
  work();
  std::unique_lock<std::mutex> lock(region->mu);
  region->cv.wait(lock, [&] {
    return region->done.load(std::memory_order_acquire) == region->n;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max<size_t>(std::thread::hardware_concurrency(), 4) - 1);
  return pool;
}

std::vector<std::pair<size_t, size_t>> Morsels(size_t n, size_t max_morsels,
                                               size_t min_grain) {
  std::vector<std::pair<size_t, size_t>> out;
  if (n == 0) return out;
  if (max_morsels == 0) max_morsels = 1;
  if (min_grain == 0) min_grain = 1;
  size_t grain = std::max(min_grain, (n + max_morsels - 1) / max_morsels);
  out.reserve((n + grain - 1) / grain);
  for (size_t b = 0; b < n; b += grain) {
    out.emplace_back(b, std::min(n, b + grain));
  }
  return out;
}

}  // namespace rdfa
