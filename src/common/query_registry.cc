#include "common/query_registry.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/metrics.h"

namespace rdfa {

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

QueryRegistry::Handle QueryRegistry::Register(QueryContext* ctx,
                                              const std::string& query_text,
                                              uint64_t query_hash,
                                              uint64_t snapshot_epoch) {
  Handle handle;
  std::lock_guard<std::mutex> lock(mu_);
  size_t index = kSlots;
  for (size_t i = 0; i < kSlots; ++i) {
    if (!slots_[i].occupied.load(std::memory_order_relaxed)) {
      index = i;
      break;
    }
  }
  if (index == kSlots) return handle;  // pool full: run unregistered

  Slot& slot = slots_[index];
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Seqlock write: odd while the metadata is inconsistent.
  slot.seq.fetch_add(1, std::memory_order_acquire);
  slot.id = id;
  slot.query_hash = query_hash;
  slot.snapshot_epoch = snapshot_epoch;
  slot.start = QueryContext::Clock::now();
  slot.has_deadline = ctx->has_deadline();
  slot.deadline = ctx->deadline();
  const size_t n = std::min(query_text.size(), sizeof(slot.head) - 1);
  std::memcpy(slot.head, query_text.data(), n);
  slot.head[n] = '\0';
  slot.progress.stage.store(nullptr, std::memory_order_relaxed);
  slot.progress.rows.store(0, std::memory_order_relaxed);
  slot.cancel_ctx = *ctx;  // shares cancellation state: Kill() cancels it
  slot.occupied.store(true, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);

  ctx->set_progress(&slot.progress);

  MetricsRegistry::Global()
      .GetGauge("rdfa_inflight_queries",
                "Queries currently executing (registered in the live query "
                "registry)")
      .Set(static_cast<double>(CountOccupiedLocked()));

  handle.registry_ = this;
  handle.slot_ = index;
  handle.id_ = id;
  return handle;
}

void QueryRegistry::Unregister(size_t slot_index, int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[slot_index];
  if (slot.id != id || !slot.occupied.load(std::memory_order_relaxed)) return;
  slot.seq.fetch_add(1, std::memory_order_acquire);
  slot.occupied.store(false, std::memory_order_relaxed);
  slot.cancel_ctx = QueryContext();  // drop the shared cancellation state
  slot.seq.fetch_add(1, std::memory_order_release);
  MetricsRegistry::Global()
      .GetGauge("rdfa_inflight_queries")
      .Set(static_cast<double>(CountOccupiedLocked()));
}

size_t QueryRegistry::CountOccupiedLocked() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.occupied.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

void QueryRegistry::Handle::Release() {
  if (registry_ != nullptr) {
    registry_->Unregister(slot_, id_);
    registry_ = nullptr;
  }
}

std::vector<InflightQuery> QueryRegistry::Snapshot() const {
  std::vector<InflightQuery> out;
  const auto now = QueryContext::Clock::now();
  for (const Slot& slot : slots_) {
    InflightQuery q;
    bool ok = false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const uint64_t s0 = slot.seq.load(std::memory_order_acquire);
      if (s0 & 1) continue;  // mid-write; retry
      if (!slot.occupied.load(std::memory_order_relaxed)) break;
      q.id = slot.id;
      q.query_hash = slot.query_hash;
      q.snapshot_epoch = slot.snapshot_epoch;
      q.head.assign(slot.head,
                    strnlen(slot.head, sizeof(slot.head)));
      q.elapsed_ms =
          std::chrono::duration<double, std::milli>(now - slot.start).count();
      q.deadline_remaining_ms =
          slot.has_deadline
              ? std::chrono::duration<double, std::milli>(slot.deadline - now)
                    .count()
              : std::numeric_limits<double>::infinity();
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) == s0) {
        ok = true;
        break;
      }
    }
    if (!ok) continue;
    // Relaxed telemetry — read outside the seqlock on purpose.
    q.stage = slot.progress.stage.load(std::memory_order_relaxed);
    q.rows = slot.progress.rows.load(std::memory_order_relaxed);
    out.push_back(std::move(q));
  }
  std::sort(out.begin(), out.end(),
            [](const InflightQuery& a, const InflightQuery& b) {
              return a.id < b.id;
            });
  return out;
}

bool QueryRegistry::Kill(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.occupied.load(std::memory_order_relaxed) && slot.id == id) {
      slot.cancel_ctx.Cancel();
      MetricsRegistry::Global()
          .GetCounter("rdfa_queries_killed_total",
                      "Queries cancelled via the registry kill command")
          .Increment();
      return true;
    }
  }
  return false;
}

void QueryRegistry::UpdateStageGauges() {
  std::vector<InflightQuery> inflight = Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const char* const kStageHelp =
      "In-flight queries currently in this execution stage";
  for (const InflightQuery& q : inflight) {
    if (q.stage != nullptr &&
        std::find(known_stages_.begin(), known_stages_.end(), q.stage) ==
            known_stages_.end()) {
      known_stages_.push_back(q.stage);
    }
  }
  for (const char* stage : known_stages_) {
    size_t n = 0;
    for (const InflightQuery& q : inflight) {
      if (q.stage == stage) ++n;
    }
    metrics
        .GetGaugeLabeled("rdfa_inflight_queries_by_stage", "stage", stage,
                         kStageHelp)
        .Set(static_cast<double>(n));
  }
}

}  // namespace rdfa
