#ifndef RDFA_COMMON_QUERY_CONTEXT_H_
#define RDFA_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/status.h"

namespace rdfa {

class Tracer;

/// Lock-free progress counters one in-flight query publishes for samplers
/// (the live query registry's `ps` view and the per-stage Prometheus
/// gauges). The memory is owned by the registry's fixed slot pool — never
/// freed — so readers may dereference without coordinating with query
/// shutdown. Writers use relaxed stores: progress is monotonic telemetry,
/// not synchronization.
struct QueryProgress {
  /// The stage name of the most recent Check(); a static string literal.
  std::atomic<const char*> stage{nullptr};
  /// Result rows produced so far (updated at join-step granularity).
  std::atomic<uint64_t> rows{0};
};

/// Per-query deadline + cooperative-cancellation handle, threaded through
/// the whole query path (executor, HIFUN evaluator, analytics session,
/// roll-up cache, endpoint). Modeled after a serving stack's request
/// context: cheap to copy (copies share one cancellation state), safe to
/// poll from many threads, and checked at natural unit-of-work boundaries
/// (morsels, join stages, group computations) rather than preemptively.
///
/// A default-constructed context is *unlimited*: no deadline, never
/// cancelled, and Check() is a couple of relaxed atomic loads — the
/// no-deadline query path stays byte-identical to a context-free run.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited context (no deadline, not cancelled).
  QueryContext() : state_(std::make_shared<State>()) {}

  /// Context that expires `ms` milliseconds from now. A non-positive budget
  /// yields an already-expired context (the zero-deadline fast-fail path).
  static QueryContext WithDeadlineMs(double ms) {
    QueryContext ctx;
    ctx.deadline_ =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(ms > 0 ? ms : 0));
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// Context expiring at an absolute time point.
  static QueryContext WithDeadline(Clock::time_point deadline) {
    QueryContext ctx;
    ctx.deadline_ = deadline;
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// A child context sharing this context's cancellation state but with a
  /// deadline no later than `ms` from now (the endpoint derives per-query
  /// budgets from the caller's context this way: cancelling the parent
  /// cancels the child, and the tighter of the two deadlines wins).
  QueryContext ChildWithDeadlineMs(double ms) const {
    QueryContext child = *this;  // shares state_
    QueryContext tighter = WithDeadlineMs(ms);
    if (!has_deadline_ || tighter.deadline_ < deadline_) {
      child.deadline_ = tighter.deadline_;
      child.has_deadline_ = true;
    }
    return child;
  }

  /// Requests cancellation. Thread-safe; visible to every copy of this
  /// context. In-flight work unwinds at its next Check().
  void Cancel() { state_->cancelled.store(true, std::memory_order_release); }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline (negative once expired); +infinity
  /// when no deadline is set.
  double remaining_ms() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

  Clock::time_point deadline() const { return deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= deadline_; }

  /// Arms deterministic fault injection: the `n`-th subsequent Check() call
  /// (counted across all threads) flips the context to cancelled. Check
  /// sequences are deterministic for a given query and dataset (morsel
  /// structure is deterministic), so tests can trip cancellation at an
  /// exact point mid-pipeline without timing races.
  void CancelAfterChecks(int64_t n) {
    state_->cancel_countdown.store(n, std::memory_order_release);
  }

  /// Total Check() calls made through this context (all copies, all
  /// threads). Used with CancelAfterChecks for deterministic tests.
  int64_t checks_performed() const {
    return state_->checks.load(std::memory_order_acquire);
  }

  /// The cooperative checkpoint. Returns OK, or Cancelled/DeadlineExceeded
  /// naming `stage` (e.g. "bgp-join", "group-aggregate") so the caller can
  /// see *where* the budget ran out. Call at unit-of-work boundaries; cost
  /// is two relaxed atomics plus, when a deadline is set, one clock read.
  Status Check(const char* stage) const {
    state_->checks.fetch_add(1, std::memory_order_relaxed);
    if (progress_ != nullptr) {
      progress_->stage.store(stage, std::memory_order_relaxed);
    }
    int64_t countdown =
        state_->cancel_countdown.load(std::memory_order_acquire);
    if (countdown > 0 &&
        state_->cancel_countdown.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
      state_->cancelled.store(true, std::memory_order_release);
    }
    if (cancelled()) {
      RecordTrip(stage);
      return Status::Cancelled(std::string("query cancelled during ") +
                               stage);
    }
    if (expired()) {
      RecordTrip(stage);
      return Status::DeadlineExceeded(
          std::string("query deadline exceeded during ") + stage);
    }
    return Status::OK();
  }

  /// The stage name of the first Check() that tripped (null if none did).
  /// Copied into ExecStats::abort_stage so partial stats say where the
  /// budget ran out.
  const char* trip_stage() const {
    return state_->trip_stage.load(std::memory_order_acquire);
  }

  /// Cheap boolean form for hot loops that only need to know whether to
  /// keep going (the full typed Status is produced once, at the stage
  /// boundary).
  bool ShouldStop() const { return cancelled() || expired(); }

  /// Attaches a span tracer (common/trace.h) for the query this context
  /// governs. Copies of the context share the tracer the same way they
  /// share cancellation state, so every layer the context already reaches
  /// — executor, BGP join, HIFUN evaluator, roll-up cache, endpoint — can
  /// record spans without new plumbing. Null (the default) disables
  /// tracing; span sites then cost one pointer compare.
  void set_tracer(std::shared_ptr<Tracer> tracer) {
    tracer_ = std::move(tracer);
  }
  Tracer* tracer() const { return tracer_.get(); }
  const std::shared_ptr<Tracer>& shared_tracer() const { return tracer_; }

  /// Attaches live-progress counters (owned by the query registry's
  /// never-freed slot pool, so the raw pointer outlives every sampler).
  /// Copies of the context share the pointer; Check() then publishes its
  /// stage, and join loops call AddProgressRows(). Null (the default) makes
  /// both a single pointer compare.
  void set_progress(QueryProgress* progress) { progress_ = progress; }
  QueryProgress* progress() const { return progress_; }

  /// Publishes `n` more produced rows for `ps`-style sampling. Relaxed:
  /// telemetry only, never synchronization.
  void AddProgressRows(uint64_t n) const {
    if (progress_ != nullptr) {
      progress_->rows.fetch_add(n, std::memory_order_relaxed);
    }
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> cancel_countdown{0};
    std::atomic<int64_t> checks{0};
    std::atomic<const char*> trip_stage{nullptr};
  };

  void RecordTrip(const char* stage) const {
    const char* expected = nullptr;  // keep the first trip's stage
    state_->trip_stage.compare_exchange_strong(expected, stage,
                                               std::memory_order_acq_rel);
  }

  std::shared_ptr<State> state_;
  std::shared_ptr<Tracer> tracer_;
  QueryProgress* progress_ = nullptr;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace rdfa

#endif  // RDFA_COMMON_QUERY_CONTEXT_H_
