#ifndef RDFA_COMMON_TRACE_H_
#define RDFA_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rdfa {

/// Per-query span tracer. One Tracer lives for the duration of one query
/// (or one interactive session action) and records *completed* spans —
/// named, timestamped intervals with optional key/value arguments — from
/// any thread that touches the query: the parse, the BGP plan, every
/// pattern join, the group-aggregate pass, HIFUN evaluation, roll-up cache
/// merges, endpoint admission queueing.
///
/// The tracer is reached through QueryContext::tracer(), so it rides the
/// existing deadline/cancellation plumbing: anything that can be cancelled
/// can also be traced. Tracing is *off* unless a Tracer is attached; the
/// disabled path is a null-pointer check per span site (Span's constructor
/// and destructor both early-out), so the tracing-off run does exactly the
/// work it did before this layer existed and results stay byte-identical.
///
/// Spans are recorded on completion as Chrome trace-event "X" (complete)
/// events: unwinding on a tripped deadline still closes every span because
/// Span is RAII — an aborted query yields a well-formed trace whose deepest
/// span names the stage the budget died in. ToChromeJson() renders a JSON
/// object loadable in Perfetto / chrome://tracing.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer() : epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// One completed span, as kept for export and for tests.
  struct SpanRecord {
    std::string name;
    double start_us = 0;  ///< microseconds since the tracer's epoch
    double dur_us = 0;
    int tid = 0;  ///< small per-tracer thread ordinal, 0 = first thread seen
    /// Creation-order span id, unique within the tracer. Parent is the id of
    /// the innermost span open *on the same thread* when this one began
    /// (-1 = root) — the same containment relation Perfetto renders, kept
    /// explicitly so ProfileJson can rebuild the operator tree after the
    /// flat completion-ordered record list is all that is left.
    int64_t id = -1;
    int64_t parent = -1;
    /// Arguments in insertion order; values are pre-rendered JSON (numbers
    /// bare, strings quoted+escaped).
    std::vector<std::pair<std::string, std::string>> args;
  };

  /// RAII span: begins timing at construction, records the completed span
  /// at destruction. A null tracer disables both ends (the disabled-path
  /// cost argument in DESIGN.md §10). Spans nest by containment — Perfetto
  /// stacks same-thread intervals — so hold the Span object across the
  /// stage it names.
  class Span {
   public:
    Span(Tracer* tracer, const char* name)
        : tracer_(tracer), name_(name) {
      if (tracer_ != nullptr) {
        start_ = Clock::now();
        id_ = tracer_->BeginSpan(&parent_);
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() {
      if (tracer_ != nullptr) {
        tracer_->EndSpan(id_);
        tracer_->RecordSpan(name_, start_, Clock::now(), id_, parent_,
                            std::move(args_));
      }
    }

    /// Attaches an argument, shown in the trace viewer on this span.
    /// Cheap no-ops when the tracer is disabled.
    void Arg(const char* key, int64_t value) {
      if (tracer_ != nullptr) {
        args_.emplace_back(key, std::to_string(value));
      }
    }
    void Arg(const char* key, uint64_t value) {
      if (tracer_ != nullptr) {
        args_.emplace_back(key, std::to_string(value));
      }
    }
    void Arg(const char* key, double value);
    void Arg(const char* key, const std::string& value);
    void Arg(const char* key, const char* value);
    void Arg(const char* key, bool value) {
      if (tracer_ != nullptr) {
        args_.emplace_back(key, value ? "true" : "false");
      }
    }

    bool enabled() const { return tracer_ != nullptr; }

   private:
    Tracer* tracer_;
    const char* name_;
    Clock::time_point start_{};
    int64_t id_ = -1;
    int64_t parent_ = -1;
    std::vector<std::pair<std::string, std::string>> args_;
  };

  /// An instantaneous event (Chrome phase "i"), e.g. a cache hit marker.
  void Instant(const char* name);

  /// Completed spans so far, in completion order. Copies under the lock —
  /// intended for tests and end-of-query export, not hot paths.
  std::vector<SpanRecord> FinishedSpans() const;

  size_t span_count() const;

  /// True if at least one finished span carries `name`.
  bool HasSpan(const std::string& name) const;

  /// The whole trace as one Chrome trace-event JSON object:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}. Timestamps are
  /// microseconds since the tracer epoch; pid is constant, tid is the
  /// per-tracer thread ordinal.
  std::string ToChromeJson() const;

  /// The operator-level profile tree: finished spans nested by parent link,
  /// each node {"op","start_ms","ms","args"?,"children"?}, siblings in
  /// creation (id) order, roots gathered under one JSON array. This is the
  /// EXPLAIN ANALYZE payload — the "execute" span is normally the sole
  /// root, with seed scans / joins / aggregation as its subtree.
  std::string ProfileJson() const;

 private:
  friend class Span;

  /// Assigns a fresh span id, reports the enclosing same-thread span of
  /// *this tracer* through `*parent` (-1 = none) and pushes the new span
  /// onto the thread's open-span stack.
  int64_t BeginSpan(int64_t* parent);
  /// Pops `id` off the thread's open-span stack (RAII makes it the top).
  void EndSpan(int64_t id);

  void RecordSpan(const char* name, Clock::time_point start,
                  Clock::time_point end, int64_t id, int64_t parent,
                  std::vector<std::pair<std::string, std::string>> args);
  int TidOrdinalLocked(std::thread::id id);
  double SinceEpochUs(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  const Clock::time_point epoch_;
  std::atomic<int64_t> next_id_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, int> tids_;
};

using TraceSpan = Tracer::Span;

}  // namespace rdfa

#endif  // RDFA_COMMON_TRACE_H_
