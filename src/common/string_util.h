#ifndef RDFA_COMMON_STRING_UTIL_H_
#define RDFA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rdfa {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality (used for SPARQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpperAscii(std::string_view s);
/// Lowercases ASCII letters.
std::string ToLowerAscii(std::string_view s);

/// Escapes `s` for use inside a double-quoted JSON string: quotes and
/// backslashes are backslash-escaped, the named control characters map to
/// \b \f \n \r \t, and every other byte below 0x20 becomes \u00XX. The one
/// escape helper shared by ExecStats::ToJson, the tracer's Chrome-trace
/// export, the structured query log, and bench_util's JsonObject — so no
/// JSON emitter in the tree can produce an unparsable document from a
/// hostile string (a query text with an embedded newline, say).
std::string JsonEscape(std::string_view s);

/// Escapes `s` for use inside a double-quoted N-Triples / SPARQL literal.
std::string EscapeLiteral(std::string_view s);
/// Reverses EscapeLiteral; unknown escapes are kept verbatim.
std::string UnescapeLiteral(std::string_view s);

/// Formats a double the way SPARQL results print plain decimals: integral
/// values have no trailing ".0"; otherwise up to 6 significant decimals with
/// trailing zeros removed.
std::string FormatNumber(double v);

}  // namespace rdfa

#endif  // RDFA_COMMON_STRING_UTIL_H_
