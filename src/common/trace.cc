#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <set>

#include "common/string_util.h"

namespace rdfa {

namespace {

/// The innermost open spans of this thread, outermost first: (tracer, id)
/// pairs. Parent links are same-thread containment — exactly the relation
/// Perfetto renders by stacking intervals — so a plain thread-local stack
/// is enough: RAII guarantees LIFO per thread, and a span never migrates
/// threads. Entries for several live tracers can interleave (a nested
/// tracer simply sees -1 parents for its own roots).
thread_local std::vector<std::pair<const Tracer*, int64_t>> tls_open_spans;

}  // namespace

int64_t Tracer::BeginSpan(int64_t* parent) {
  *parent = !tls_open_spans.empty() && tls_open_spans.back().first == this
                ? tls_open_spans.back().second
                : -1;
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  tls_open_spans.emplace_back(this, id);
  return id;
}

void Tracer::EndSpan(int64_t id) {
  if (!tls_open_spans.empty() && tls_open_spans.back().first == this &&
      tls_open_spans.back().second == id) {
    tls_open_spans.pop_back();
  }
}

void Tracer::Span::Arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  args_.emplace_back(key, buf);
}

void Tracer::Span::Arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void Tracer::Span::Arg(const char* key, const char* value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void Tracer::Instant(const char* name) {
  // Rendered as a zero-duration span: one storage shape keeps export and
  // test helpers uniform, and Perfetto draws it as a tick.
  Clock::time_point now = Clock::now();
  const int64_t parent =
      !tls_open_spans.empty() && tls_open_spans.back().first == this
          ? tls_open_spans.back().second
          : -1;
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(name, now, now, id, parent, {});
}

void Tracer::RecordSpan(
    const char* name, Clock::time_point start, Clock::time_point end,
    int64_t id, int64_t parent,
    std::vector<std::pair<std::string, std::string>> args) {
  SpanRecord rec;
  rec.name = name;
  rec.start_us = SinceEpochUs(start);
  rec.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  rec.id = id;
  rec.parent = parent;
  rec.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  rec.tid = TidOrdinalLocked(std::this_thread::get_id());
  spans_.push_back(std::move(rec));
}

int Tracer::TidOrdinalLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  int ordinal = static_cast<int>(tids_.size());
  tids_.emplace(id, ordinal);
  return ordinal;
}

std::vector<Tracer::SpanRecord> Tracer::FinishedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

bool Tracer::HasSpan(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& s : spans_) {
    if (s.name == name) return true;
  }
  return false;
}

std::string Tracer::ToChromeJson() const {
  std::vector<SpanRecord> spans = FinishedSpans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1";
    out += ",\"tid\":" + std::to_string(s.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", s.start_us,
                  s.dur_us);
    out += buf;
    if (!s.args.empty()) {
      out += ",\"args\":{";
      for (size_t a = 0; a < s.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"" + JsonEscape(s.args[a].first) + "\":" + s.args[a].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ProfileJson() const {
  std::vector<SpanRecord> spans = FinishedSpans();
  // Siblings render in creation (id) order: completion order would put a
  // parent *after* its children, which reads backwards in a plan tree.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spans[a].id < spans[b].id;
  });
  std::set<int64_t> finished_ids;
  for (const SpanRecord& s : spans) finished_ids.insert(s.id);
  std::map<int64_t, std::vector<size_t>> children;  // parent id -> span idx
  for (size_t i : order) {
    // A parent that never finished (possible only when exporting mid-query)
    // cannot anchor a subtree: promote its children to roots.
    const int64_t p =
        finished_ids.count(spans[i].parent) ? spans[i].parent : -1;
    children[p].push_back(i);
  }
  char buf[64];
  std::function<void(const SpanRecord&, std::string*)> render =
      [&](const SpanRecord& s, std::string* out) {
        *out += "{\"op\":\"" + JsonEscape(s.name) + "\"";
        std::snprintf(buf, sizeof(buf),
                      ",\"start_ms\":%.3f,\"ms\":%.3f", s.start_us / 1000.0,
                      s.dur_us / 1000.0);
        *out += buf;
        if (!s.args.empty()) {
          *out += ",\"args\":{";
          for (size_t a = 0; a < s.args.size(); ++a) {
            if (a > 0) *out += ",";
            *out +=
                "\"" + JsonEscape(s.args[a].first) + "\":" + s.args[a].second;
          }
          *out += "}";
        }
        auto it = children.find(s.id);
        if (it != children.end()) {
          *out += ",\"children\":[";
          for (size_t c = 0; c < it->second.size(); ++c) {
            if (c > 0) *out += ",";
            render(spans[it->second[c]], out);
          }
          *out += "]";
        }
        *out += "}";
      };
  std::string out = "[";
  auto roots = children.find(-1);
  if (roots != children.end()) {
    for (size_t r = 0; r < roots->second.size(); ++r) {
      if (r > 0) out += ",";
      render(spans[roots->second[r]], &out);
    }
  }
  out += "]";
  return out;
}

}  // namespace rdfa
