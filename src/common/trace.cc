#include "common/trace.h"

#include <cstdio>

#include "common/string_util.h"

namespace rdfa {

void Tracer::Span::Arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  args_.emplace_back(key, buf);
}

void Tracer::Span::Arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void Tracer::Span::Arg(const char* key, const char* value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void Tracer::Instant(const char* name) {
  // Rendered as a zero-duration span: one storage shape keeps export and
  // test helpers uniform, and Perfetto draws it as a tick.
  Clock::time_point now = Clock::now();
  RecordSpan(name, now, now, {});
}

void Tracer::RecordSpan(
    const char* name, Clock::time_point start, Clock::time_point end,
    std::vector<std::pair<std::string, std::string>> args) {
  SpanRecord rec;
  rec.name = name;
  rec.start_us = SinceEpochUs(start);
  rec.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  rec.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  rec.tid = TidOrdinalLocked(std::this_thread::get_id());
  spans_.push_back(std::move(rec));
}

int Tracer::TidOrdinalLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  int ordinal = static_cast<int>(tids_.size());
  tids_.emplace(id, ordinal);
  return ordinal;
}

std::vector<Tracer::SpanRecord> Tracer::FinishedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

bool Tracer::HasSpan(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& s : spans_) {
    if (s.name == name) return true;
  }
  return false;
}

std::string Tracer::ToChromeJson() const {
  std::vector<SpanRecord> spans = FinishedSpans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1";
    out += ",\"tid\":" + std::to_string(s.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", s.start_us,
                  s.dur_us);
    out += buf;
    if (!s.args.empty()) {
      out += ",\"args\":{";
      for (size_t a = 0; a < s.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"" + JsonEscape(s.args[a].first) + "\":" + s.args[a].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace rdfa
