#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/string_util.h"

namespace rdfa {

namespace metrics_internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal % kShards;
}

}  // namespace metrics_internal

using metrics_internal::kShards;

namespace {

std::string FormatValue(double v) {
  // Integral values print bare (Prometheus accepts either; bare integers
  // keep counter samples exact), fractional ones with fixed precision.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Splits a registered series name into its family and the label body:
/// "fam{k=\"v\"}" -> ("fam", "k=\"v\""); an unlabeled name has an empty
/// label body. Exposition needs the split so histogram suffixes land on the
/// family (fam_bucket{k="v",le="..."}), not inside the braces.
void SplitSeries(const std::string& name, std::string* family,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// Escapes a HELP text per the exposition format (backslash and newline).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::vector<metrics_internal::ShardedU64>(
      kShards * (bounds_.size() + 1));
}

void Histogram::Observe(double value) {
  size_t shard = metrics_internal::ThisThreadShard();
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[shard * (bounds_.size() + 1) + bucket].v.fetch_add(
      1, std::memory_order_relaxed);
  count_[shard].v.fetch_add(1, std::memory_order_relaxed);
  sum_[shard].Add(value);
}

uint64_t Histogram::Count() const {
  uint64_t sum = 0;
  for (size_t s = 0; s < kShards; ++s) {
    sum += count_[s].v.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::Sum() const {
  double sum = 0;
  for (size_t s = 0; s < kShards; ++s) {
    sum += sum_[s].v.load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += counts_[s * out.size() + b].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.v.store(0, std::memory_order_relaxed);
  for (size_t s = 0; s < kShards; ++s) {
    count_[s].v.store(0, std::memory_order_relaxed);
    sum_[s].v.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::LatencyBoundsMs() {
  return {0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 8000};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    e.counter = std::make_unique<Counter>();
    if (!help.empty()) e.help = help;
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    e.gauge = std::make_unique<Gauge>();
    if (!help.empty()) e.help = help;
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    if (!help.empty()) e.help = help;
  }
  return *e.histogram;
}

Counter& MetricsRegistry::GetCounterLabeled(const std::string& family,
                                            const std::string& label_key,
                                            const std::string& label_value,
                                            const std::string& help) {
  return GetCounter(LabeledName(family, label_key, label_value), help);
}

Gauge& MetricsRegistry::GetGaugeLabeled(const std::string& family,
                                        const std::string& label_key,
                                        const std::string& label_value,
                                        const std::string& help) {
  return GetGauge(LabeledName(family, label_key, label_value), help);
}

std::string MetricsRegistry::EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::LabeledName(const std::string& family,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  return family + "{" + label_key + "=\"" + EscapeLabelValue(label_value) +
         "\"}";
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.histogram.get();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Labeled children of one family sort contiguously (the '{' suffix), so
  // emitting HELP/TYPE on first encounter groups every family correctly; an
  // empty help falls back to the family name, keeping the exposition's
  // every-family-has-HELP invariant even for lazily registered series.
  std::set<std::string> emitted_families;
  for (const auto& [name, e] : entries_) {
    std::string family, labels;
    SplitSeries(name, &family, &labels);
    const std::string brace_labels = labels.empty() ? "" : "{" + labels + "}";
    if (emitted_families.insert(family).second) {
      out += "# HELP " + family + " " +
             (e.help.empty() ? family : EscapeHelp(e.help)) + "\n";
      const char* type = e.counter != nullptr    ? "counter"
                         : e.gauge != nullptr    ? "gauge"
                         : e.histogram != nullptr ? "histogram"
                                                  : "untyped";
      out += "# TYPE " + family + " " + type + "\n";
    }
    if (e.counter != nullptr) {
      out += family + brace_labels + " " +
             std::to_string(e.counter->Value()) + "\n";
    } else if (e.gauge != nullptr) {
      out += family + brace_labels + " " + FormatValue(e.gauge->Value()) +
             "\n";
    } else if (e.histogram != nullptr) {
      const std::string le_prefix =
          labels.empty() ? "_bucket{le=\"" : "_bucket{" + labels + ",le=\"";
      const std::vector<double>& bounds = e.histogram->bounds();
      std::vector<uint64_t> buckets = e.histogram->BucketCounts();
      uint64_t cumulative = 0;
      for (size_t b = 0; b < bounds.size(); ++b) {
        cumulative += buckets[b];
        out += family + le_prefix + FormatValue(bounds[b]) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += buckets[bounds.size()];
      out += family + le_prefix + "+Inf\"} " + std::to_string(cumulative) +
             "\n";
      out += family + "_sum" + brace_labels + " " +
             FormatValue(e.histogram->Sum()) + "\n";
      out += family + "_count" + brace_labels + " " +
             std::to_string(e.histogram->Count()) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
    if (e.counter != nullptr) {
      out += std::to_string(e.counter->Value());
    } else if (e.gauge != nullptr) {
      out += FormatValue(e.gauge->Value());
    } else if (e.histogram != nullptr) {
      out += "{\"count\":" + std::to_string(e.histogram->Count());
      out += ",\"sum\":" + FormatValue(e.histogram->Sum());
      out += ",\"buckets\":[";
      std::vector<uint64_t> buckets = e.histogram->BucketCounts();
      const std::vector<double>& bounds = e.histogram->bounds();
      for (size_t b = 0; b < buckets.size(); ++b) {
        if (b > 0) out += ",";
        out += "{\"le\":";
        out += b < bounds.size() ? FormatValue(bounds[b])
                                 : std::string("\"+Inf\"");
        out += ",\"count\":" + std::to_string(buckets[b]) + "}";
      }
      out += "]}";
    } else {
      out += "null";
    }
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

}  // namespace rdfa
