#ifndef RDFA_COMMON_QUERY_REGISTRY_H_
#define RDFA_COMMON_QUERY_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_context.h"

namespace rdfa {

/// One sampled in-flight query, as returned by QueryRegistry::Snapshot().
struct InflightQuery {
  int64_t id = 0;               ///< registry-assigned, monotonically rising
  uint64_t query_hash = 0;      ///< FNV-1a of the query text (plan-cache key)
  std::string head;             ///< first bytes of the query text
  const char* stage = nullptr;  ///< most recent Check() stage (may be null)
  uint64_t rows = 0;            ///< rows produced so far
  double elapsed_ms = 0;        ///< wall time since Register()
  /// Milliseconds until the deadline; +infinity when none is set.
  double deadline_remaining_ms = 0;
  uint64_t snapshot_epoch = 0;  ///< MVCC epoch the query pinned (0 = none)
};

/// Process-wide registry of executing queries, built for lock-free
/// sampling: `ps` in the shell, the `rdfa_inflight_queries` gauges, and
/// slow-query triage all read it without ever blocking a query.
///
/// Design (DESIGN.md §15): a fixed pool of slots, each owning its
/// QueryProgress atomics *forever* — slots are reused but never freed, so a
/// sampler may dereference a progress pointer with no coordination against
/// query shutdown. Slot metadata (id, hash, head, deadline) is guarded by a
/// per-slot seqlock: writers (Register/Unregister, rare) bump the sequence
/// to odd, mutate, bump to even; Snapshot() retries a slot while the
/// sequence is odd or changed across the read. stage/rows ride outside the
/// seqlock as relaxed atomics — monotonic telemetry where a momentarily
/// stale read is fine. Register/Unregister/Kill serialize on one mutex;
/// that path runs twice per query and never contends with sampling.
class QueryRegistry {
 public:
  /// The process-wide registry (shell + endpoint share it).
  static QueryRegistry& Global();

  /// Capacity of the slot pool. Queries beyond this many in flight run
  /// unregistered (invisible to `ps`, still fully functional) rather than
  /// blocking admission on observability.
  static constexpr size_t kSlots = 64;

  /// RAII registration: attaches progress counters to `ctx` (so copies the
  /// caller hands to the executor publish stage/rows) and unregisters on
  /// destruction. A default-constructed or moved-from handle is inert.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept {
      Release();
      registry_ = other.registry_;
      slot_ = other.slot_;
      id_ = other.id_;
      other.registry_ = nullptr;
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { Release(); }

    /// The registry-assigned id (what `kill <id>` takes); -1 when inert.
    int64_t id() const { return registry_ != nullptr ? id_ : -1; }

   private:
    friend class QueryRegistry;
    void Release();
    QueryRegistry* registry_ = nullptr;
    size_t slot_ = 0;
    int64_t id_ = -1;
  };

  /// Registers an executing query and wires `ctx` (by pointer: the caller's
  /// context object is mutated so its copies share the progress slot).
  /// `query_text` is truncated into the slot's head buffer;
  /// `snapshot_epoch` is 0 when the query is not reading an MVCC snapshot.
  Handle Register(QueryContext* ctx, const std::string& query_text,
                  uint64_t query_hash, uint64_t snapshot_epoch);

  /// Lock-free sample of every in-flight query, ordered by id.
  std::vector<InflightQuery> Snapshot() const;

  /// Cancels the query with the given id (its next Check() unwinds with
  /// Status::Cancelled). Returns false when no such query is in flight.
  bool Kill(int64_t id);

  /// Refreshes `rdfa_inflight_queries_by_stage{stage="..."}` gauges from a
  /// fresh snapshot. Called by metrics exposition sites just before
  /// rendering; stages ever seen keep their gauge (dropping to 0), so
  /// scrapes see consistent series.
  void UpdateStageGauges();

 private:
  struct Slot {
    /// Seqlock over the metadata below: even = stable, odd = mid-write.
    std::atomic<uint64_t> seq{0};
    std::atomic<bool> occupied{false};
    int64_t id = -1;
    uint64_t query_hash = 0;
    uint64_t snapshot_epoch = 0;
    QueryContext::Clock::time_point start{};
    QueryContext::Clock::time_point deadline{};
    bool has_deadline = false;
    char head[96] = {0};
    /// Progress atomics sampled raw — owned here, reused, never freed.
    QueryProgress progress;
    /// Cancellable copy of the registered context; touched only under
    /// mu_ (Kill and Register/Unregister), never by samplers.
    QueryContext cancel_ctx;
  };

  void Unregister(size_t slot_index, int64_t id);
  size_t CountOccupiedLocked() const;

  mutable std::mutex mu_;
  std::atomic<int64_t> next_id_{1};
  Slot slots_[kSlots];
  /// Stage names ever observed by UpdateStageGauges, so series that empty
  /// out are reset to 0 instead of going stale.
  std::vector<const char*> known_stages_;
};

}  // namespace rdfa

#endif  // RDFA_COMMON_QUERY_REGISTRY_H_
