#ifndef RDFA_COMMON_FOOTPRINT_H_
#define RDFA_COMMON_FOOTPRINT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace rdfa {

/// The set of predicates a cached artifact depends on, recorded at plan
/// time. Cache entries carry one of these so invalidation can be
/// predicate-granular: an entry goes stale only when a predicate in its
/// footprint has mutated, not on every graph change.
///
/// `wildcard` (the default) means the dependency set is unknown or
/// unbounded — a variable-predicate pattern, a property path, a DESCRIBE —
/// and the artifact must be validated against the global mutation
/// generation instead, which is exactly the pre-footprint behavior.
struct CacheFootprint {
  std::vector<std::string> predicates;  ///< sorted, deduped predicate IRIs
  bool wildcard = true;

  static CacheFootprint Wildcard() { return CacheFootprint{}; }

  /// A precise footprint over `preds` (sorted + deduped here, so equality
  /// and stamping are canonical).
  static CacheFootprint Of(std::vector<std::string> preds) {
    CacheFootprint fp;
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    fp.predicates = std::move(preds);
    fp.wildcard = false;
    return fp;
  }

  size_t ApproxBytes() const {
    size_t bytes = sizeof(CacheFootprint);
    for (const std::string& p : predicates) bytes += p.size();
    return bytes;
  }
};

}  // namespace rdfa

#endif  // RDFA_COMMON_FOOTPRINT_H_
