#ifndef RDFA_SERVER_HTTP_UTIL_H_
#define RDFA_SERVER_HTTP_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rdfa::server {

/// Percent-decodes `in` per RFC 3986 / application/x-www-form-urlencoded.
/// `plus_is_space` additionally maps '+' to ' ' (form/query-string rules).
/// Returns false on a truncated or non-hex escape ("%x", "%zz", trailing
/// "%") — callers turn that into an HTTP 400, never into silent garbage.
bool PercentDecode(std::string_view in, std::string* out, bool plus_is_space);

/// Percent-encodes `in` for use inside a query-string value: unreserved
/// characters pass through, space becomes %20, everything else %XX. The
/// load generator and tests build request targets with this.
std::string PercentEncode(std::string_view in);

/// Splits "a=b&c=d%20e" into decoded (key, value) pairs in order. Empty
/// segments are skipped; a key without '=' gets an empty value. Returns
/// false if any component fails to percent-decode.
bool ParseUrlEncodedForm(
    std::string_view form,
    std::vector<std::pair<std::string, std::string>>* out);

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;     ///< verbatim token from the request line
  std::string target;     ///< raw request-target, e.g. "/sparql?query=..."
  std::string path;       ///< target up to '?' (undecoded; routes are ASCII)
  std::string raw_query;  ///< target after '?', still percent-encoded
  int version_minor = 1;  ///< HTTP/1.<n> from the request line
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close; a Connection header overrides either.
  bool keep_alive = true;

  /// Value of the first header named `name` (lowercase), or "".
  std::string_view Header(std::string_view name) const;
};

/// Incremental outcome of feeding bytes to the request parser.
enum class ParseState {
  kNeedMore,  ///< the buffer holds a prefix of a valid request
  kDone,      ///< one full request was consumed from the buffer
  kError,     ///< protocol violation; `error_status` says which 4xx/5xx
};

/// Zero-copy-ish incremental HTTP/1.1 request parser: call Feed() with the
/// connection's accumulated input buffer; on kDone the consumed bytes are
/// erased (leftover pipelined bytes stay for the next call). The parser is
/// stateless between requests — every Feed() re-scans the (small) buffer —
/// which keeps split-read handling trivially correct: any byte split,
/// including mid-request-line or mid-%-escape, just returns kNeedMore.
class HttpRequestParser {
 public:
  HttpRequestParser(size_t max_header_bytes, size_t max_body_bytes)
      : max_header_bytes_(max_header_bytes), max_body_bytes_(max_body_bytes) {}

  /// On kError, `*error_status` is the HTTP status to answer with before
  /// closing: 400 malformed, 413 oversized body, 431 oversized header
  /// section, 501 unimplemented transfer-coding, 505 bad version.
  ParseState Feed(std::string* buffer, HttpRequest* out, int* error_status);

 private:
  size_t max_header_bytes_;
  size_t max_body_bytes_;
};

/// Renders a full HTTP/1.1 response with Content-Length and Connection
/// headers. `reason` defaults from the status code when empty;
/// `extra_headers` are spliced in verbatim (each "Name: value", no CRLF).
std::string RenderHttpResponse(
    int status, const std::string& content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::string>& extra_headers = {});

/// Canonical reason phrase for the handful of status codes the server
/// emits; "Unknown" otherwise.
const char* ReasonPhrase(int status);

/// Minimal blocking HTTP/1.1 client over one loopback connection, shared
/// by the load generator and the test suites. Not a general client: it
/// trusts Content-Length framing (which the server always provides).
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept { *this = std::move(other); }
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Connects to host:port (numeric IPv4 host). False on failure.
  bool Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();
  int fd() const { return fd_; }

  /// Writes all of `bytes` (handling short writes). False on error.
  bool SendRaw(std::string_view bytes);

  /// One parsed response.
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased
    std::string body;
    bool keep_alive = true;
    std::string_view Header(std::string_view name) const;
  };

  /// Reads one response (status line + headers + Content-Length body).
  /// False on EOF/timeout/garbage; the connection is then dead.
  bool ReadResponse(Response* out);

  /// Convenience: GET `target`, optionally with an Accept header.
  bool Get(const std::string& target, Response* out,
           const std::string& accept = "");
  /// Convenience: POST `target` with the given body/content type.
  bool Post(const std::string& target, const std::string& content_type,
            const std::string& body, Response* out,
            const std::string& accept = "");

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous response
};

}  // namespace rdfa::server

#endif  // RDFA_SERVER_HTTP_UTIL_H_
