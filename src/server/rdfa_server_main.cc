// rdfa_server: the network front-end of the engine. One process serving the
// SPARQL protocol dialect over HTTP/1.1 — admission control, per-request
// deadlines, the generation-aware query cache, MVCC snapshot reads, tracing
// and the query log all come from the shared request pipeline.
//
//   ./build/src/rdfa_server --port=8080 --threads=4 --scale=1000
//   ./build/src/rdfa_server --port=8080 --wal=/tmp/rdfa.wal
//
// Endpoints: GET/POST /sparql, GET /explain, GET /metrics, GET /healthz.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "endpoint/endpoint.h"
#include "endpoint/request_handler.h"
#include "rdf/mvcc.h"
#include "server/http_server.h"
#include "sparql/executor.h"
#include "workload/products.h"

namespace {

std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::fprintf(stderr, R"(usage: rdfa_server [flags]
  --host=ADDR          bind address (default 127.0.0.1)
  --port=N             listen port; 0 = ephemeral, printed (default 8080)
  --threads=N          HTTP worker threads (default 4)
  --exec-threads=N     morsel-parallelism budget per query (default 1)
  --scale=N            generate the product KG with N laptops
                       (default: the small running example)
  --wal=PATH           durable MVCC mode: replay + append this WAL
  --cache-mb=N         answer-cache budget; 0 disables (default 64)
  --max-in-flight=N    queries executing concurrently (default 8)
  --max-queue=N        admission FIFO depth beyond that (default 64)
  --timeout-ms=N       cap for (and default of) the per-request timeout=
                       parameter; 0 = uncapped (default 30000)
  --query-log=PATH     structured one-line-per-query JSON log
  --slow-query-dir=DIR slow-query capture ring (threshold --slow-query-ms)
  --slow-query-ms=N    capture threshold (default 250)
)");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 8080;
  int threads = 4;
  int exec_threads = 1;
  size_t scale = 0;
  std::string wal_path, query_log_path, slow_dir;
  double slow_ms = 250;
  size_t cache_mb = 64;
  size_t max_in_flight = 8;
  size_t max_queue = 64;
  double timeout_ms = 30'000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i], v;
    if (ParseFlag(arg, "host", &v)) {
      host = v;
    } else if (ParseFlag(arg, "port", &v)) {
      port = std::atol(v.c_str());
    } else if (ParseFlag(arg, "threads", &v)) {
      threads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "exec-threads", &v)) {
      exec_threads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "scale", &v)) {
      scale = static_cast<size_t>(std::atol(v.c_str()));
    } else if (ParseFlag(arg, "wal", &v)) {
      wal_path = v;
    } else if (ParseFlag(arg, "cache-mb", &v)) {
      cache_mb = static_cast<size_t>(std::atol(v.c_str()));
    } else if (ParseFlag(arg, "max-in-flight", &v)) {
      max_in_flight = static_cast<size_t>(std::atol(v.c_str()));
    } else if (ParseFlag(arg, "max-queue", &v)) {
      max_queue = static_cast<size_t>(std::atol(v.c_str()));
    } else if (ParseFlag(arg, "timeout-ms", &v)) {
      timeout_ms = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(arg, "query-log", &v)) {
      query_log_path = v;
    } else if (ParseFlag(arg, "slow-query-dir", &v)) {
      slow_dir = v;
    } else if (ParseFlag(arg, "slow-query-ms", &v)) {
      slow_ms = std::strtod(v.c_str(), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "bad --port=%ld\n", port);
    return 2;
  }

  // Seed dataset: the running example, or the generated product KG.
  auto base = std::make_unique<rdfa::rdf::Graph>();
  if (scale > 0) {
    rdfa::workload::ProductKgOptions kg;
    kg.laptops = scale;
    size_t triples = rdfa::workload::GenerateProductKg(base.get(), kg);
    std::printf("dataset: product KG, scale=%zu (%zu triples)\n", scale,
                triples);
  } else {
    rdfa::workload::BuildRunningExample(base.get());
    std::printf("dataset: running example (%zu triples)\n", base->size());
  }

  // Always MVCC: queries pin immutable snapshots, so commits through the
  // MvccGraph (e.g. a WAL writer) never stall readers. --wal adds
  // durability on top.
  rdfa::rdf::MvccGraph::Options mopts;
  mopts.wal_path = wal_path;
  mopts.update_fn = [](rdfa::rdf::Graph* g, const std::string& text) {
    auto applied = rdfa::sparql::ExecuteUpdateString(g, text);
    return applied.ok() ? rdfa::Status::OK() : applied.status();
  };
  auto opened = rdfa::rdf::MvccGraph::Open(std::move(mopts), std::move(base));
  if (!opened.ok()) {
    std::fprintf(stderr, "error: cannot open store: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<rdfa::rdf::MvccGraph> mvcc = std::move(opened).value();
  if (!wal_path.empty()) {
    const auto info = mvcc->open_info();
    std::printf("wal: %s — replayed %llu records (%llu torn bytes)\n",
                wal_path.c_str(),
                static_cast<unsigned long long>(info.replayed_records),
                static_cast<unsigned long long>(info.truncated_bytes));
  }

  rdfa::endpoint::SimulatedEndpoint endpoint(
      mvcc.get(), rdfa::endpoint::LatencyProfile::Local(),
      /*enable_cache=*/cache_mb > 0);
  rdfa::CacheOptions copts;
  copts.max_bytes = cache_mb << 20;
  copts.max_entries = 4096;
  copts.enabled = cache_mb > 0;
  endpoint.set_cache_options(copts);
  rdfa::endpoint::AdmissionOptions adm;
  adm.max_in_flight = max_in_flight;
  adm.max_queue = max_queue;
  adm.base_timeout_ms = 0;  // the HTTP layer's timeout cap governs
  endpoint.set_admission(adm);
  endpoint.set_thread_count(exec_threads);
  endpoint.set_use_dp(true);
  if (!query_log_path.empty()) endpoint.set_query_log_path(query_log_path);
  if (!slow_dir.empty()) endpoint.set_slow_query_capture(slow_dir, slow_ms);

  rdfa::endpoint::RequestHandler handler(&endpoint, timeout_ms);
  rdfa::server::HttpServerOptions sopts;
  sopts.host = host;
  sopts.port = static_cast<uint16_t>(port);
  sopts.worker_threads = threads;
  sopts.max_timeout_ms = timeout_ms;
  rdfa::server::HttpServer server(&handler, sopts);
  rdfa::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("rdfa_server listening on http://%s:%u/sparql "
              "(%d workers, %zu in-flight, queue %zu)\n",
              host.c_str(), server.port(), threads, max_in_flight, max_queue);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  server.Stop();
  const auto c = server.counters();
  std::printf("served %llu requests on %llu connections\n",
              static_cast<unsigned long long>(c.requests_served),
              static_cast<unsigned long long>(c.connections_accepted));
  return 0;
}
