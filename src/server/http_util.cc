#include "server/http_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace rdfa::server {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool IsUnreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

/// True when `value` (a Connection header) lists `token` among its
/// comma-separated, case-insensitive members.
bool HasConnectionToken(std::string_view value, std::string_view token) {
  for (const std::string& part : SplitString(value, ',')) {
    if (EqualsIgnoreCase(TrimWhitespace(part), token)) return true;
  }
  return false;
}

}  // namespace

bool PercentDecode(std::string_view in, std::string* out,
                   bool plus_is_space) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size() || HexValue(in[i + 1]) < 0 ||
          HexValue(in[i + 2]) < 0) {
        return false;  // truncated or non-hex escape
      }
      out->push_back(static_cast<char>(HexValue(in[i + 1]) * 16 +
                                       HexValue(in[i + 2])));
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

std::string PercentEncode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (IsUnreserved(c)) {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

bool ParseUrlEncodedForm(
    std::string_view form,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  for (const std::string& pair : SplitString(form, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key, value;
    if (eq == std::string::npos) {
      if (!PercentDecode(pair, &key, /*plus_is_space=*/true)) return false;
    } else {
      if (!PercentDecode(std::string_view(pair).substr(0, eq), &key,
                         /*plus_is_space=*/true) ||
          !PercentDecode(std::string_view(pair).substr(eq + 1), &value,
                         /*plus_is_space=*/true)) {
        return false;
      }
    }
    out->emplace_back(std::move(key), std::move(value));
  }
  return true;
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

ParseState HttpRequestParser::Feed(std::string* buffer, HttpRequest* out,
                                   int* error_status) {
  *error_status = 400;
  // Locate the end of the header section. CRLF line endings per the RFC;
  // bare-LF requests (hand-typed through netcat) are tolerated.
  size_t header_end = buffer->find("\r\n\r\n");
  size_t terminator = 4;
  size_t lf_end = buffer->find("\n\n");
  if (lf_end != std::string::npos &&
      (header_end == std::string::npos || lf_end < header_end)) {
    header_end = lf_end;
    terminator = 2;
  }
  if (header_end == std::string::npos) {
    if (buffer->size() > max_header_bytes_) {
      *error_status = 431;  // header section will never fit
      return ParseState::kError;
    }
    return ParseState::kNeedMore;
  }
  if (header_end > max_header_bytes_) {
    *error_status = 431;
    return ParseState::kError;
  }

  HttpRequest req;
  std::vector<std::string> lines =
      SplitString(std::string_view(*buffer).substr(0, header_end), '\n');
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  if (lines.empty() || lines[0].empty()) return ParseState::kError;

  // Request line: METHOD SP request-target SP HTTP/1.minor
  std::vector<std::string> parts = SplitString(lines[0], ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty()) {
    return ParseState::kError;
  }
  for (char c : parts[0]) {
    // Methods are tokens of visible ASCII; anything else (binary noise from
    // a fuzzer, an attempted TLS handshake) is not HTTP at all.
    if (c <= ' ' || c >= 0x7f) return ParseState::kError;
  }
  req.method = parts[0];
  req.target = parts[1];
  if (!StartsWith(parts[2], "HTTP/")) return ParseState::kError;
  if (parts[2] == "HTTP/1.1") {
    req.version_minor = 1;
  } else if (parts[2] == "HTTP/1.0") {
    req.version_minor = 0;
  } else {
    *error_status = 505;
    return ParseState::kError;
  }
  size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  if (qmark != std::string::npos) req.raw_query = req.target.substr(qmark + 1);

  // Header fields. Obsolete line folding (a field starting with
  // whitespace) is rejected per RFC 7230 §3.2.4.
  uint64_t content_length = 0;
  bool have_length = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (line[0] == ' ' || line[0] == '\t') return ParseState::kError;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return ParseState::kError;
    std::string name = ToLowerAscii(line.substr(0, colon));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return ParseState::kError;  // no whitespace before the colon
    }
    std::string value(TrimWhitespace(std::string_view(line).substr(colon + 1)));
    if (name == "content-length") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return ParseState::kError;
      }
      errno = 0;
      uint64_t parsed = std::strtoull(value.c_str(), nullptr, 10);
      if (errno == ERANGE || (have_length && parsed != content_length)) {
        return ParseState::kError;  // overflow or conflicting lengths
      }
      content_length = parsed;
      have_length = true;
    }
    if (name == "transfer-encoding") {
      *error_status = 501;  // chunked bodies are not implemented
      return ParseState::kError;
    }
    req.headers.emplace_back(std::move(name), std::move(value));
  }
  if (content_length > max_body_bytes_) {
    *error_status = 413;
    return ParseState::kError;
  }
  size_t total = header_end + terminator + content_length;
  if (buffer->size() < total) return ParseState::kNeedMore;

  req.body = buffer->substr(header_end + terminator, content_length);
  req.keep_alive = req.version_minor >= 1;
  std::string_view conn = req.Header("connection");
  if (HasConnectionToken(conn, "close")) req.keep_alive = false;
  if (HasConnectionToken(conn, "keep-alive")) req.keep_alive = true;

  buffer->erase(0, total);
  *out = std::move(req);
  return ParseState::kDone;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string RenderHttpResponse(int status, const std::string& content_type,
                               std::string_view body, bool keep_alive,
                               const std::vector<std::string>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const std::string& h : extra_headers) out += h + "\r\n";
  out += "\r\n";
  out.append(body);
  return out;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  // A stalled server must fail the harness loudly, not hang it.
  timeval tv{30, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool HttpClient::SendRaw(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string_view HttpClient::Response::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

bool HttpClient::ReadResponse(Response* out) {
  *out = Response();
  auto fill = [&]() -> bool {  // one more read() into buffer_
    char chunk[8192];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  };
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > (1u << 20) || !fill()) return false;
  }
  std::vector<std::string> lines =
      SplitString(std::string_view(buffer_).substr(0, header_end), '\n');
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  if (lines.empty() || !StartsWith(lines[0], "HTTP/1.")) return false;
  out->keep_alive = StartsWith(lines[0], "HTTP/1.1");
  size_t sp = lines[0].find(' ');
  if (sp == std::string::npos) return false;
  out->status = std::atoi(lines[0].c_str() + sp + 1);
  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLowerAscii(lines[i].substr(0, colon));
    std::string value(
        TrimWhitespace(std::string_view(lines[i]).substr(colon + 1)));
    if (name == "content-length") {
      content_length = std::strtoull(value.c_str(), nullptr, 10);
    }
    if (name == "connection") {
      if (HasConnectionToken(value, "close")) out->keep_alive = false;
      if (HasConnectionToken(value, "keep-alive")) out->keep_alive = true;
    }
    out->headers.emplace_back(std::move(name), std::move(value));
  }
  size_t total = header_end + 4 + content_length;
  while (buffer_.size() < total) {
    if (!fill()) return false;
  }
  out->body = buffer_.substr(header_end + 4, content_length);
  buffer_.erase(0, total);
  return true;
}

bool HttpClient::Get(const std::string& target, Response* out,
                     const std::string& accept) {
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: rdfa\r\n";
  if (!accept.empty()) req += "Accept: " + accept + "\r\n";
  req += "\r\n";
  return SendRaw(req) && ReadResponse(out);
}

bool HttpClient::Post(const std::string& target,
                      const std::string& content_type, const std::string& body,
                      Response* out, const std::string& accept) {
  std::string req = "POST " + target + " HTTP/1.1\r\nHost: rdfa\r\n";
  req += "Content-Type: " + content_type + "\r\n";
  if (!accept.empty()) req += "Accept: " + accept + "\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  req += body;
  return SendRaw(req) && ReadResponse(out);
}

}  // namespace rdfa::server
