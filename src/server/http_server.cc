#include "server/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/metrics.h"
#include "common/query_registry.h"
#include "common/string_util.h"

namespace rdfa::server {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Looks up `key` in decoded form params (first occurrence wins).
const std::string* FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

HttpServer::HttpServer(endpoint::RequestHandler* handler,
                       HttpServerOptions options)
    : handler_(handler), options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal(ErrnoText("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(ErrnoText("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 1024) != 0) {
    Status st = Status::Internal(ErrnoText("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  // The dispatcher must never block in accept(): poll gates it.
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  if (::pipe(wake_pipe_) != 0) {
    Status st = Status::Internal(ErrnoText("pipe"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  dispatcher_ = std::thread(&HttpServer::DispatcherLoop, this);
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  WakeDispatcher();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Whatever connections were still queued or handed back are closed here;
  // workers closed their own on the way out.
  std::deque<std::unique_ptr<Connection>> queued;
  std::vector<std::unique_ptr<Connection>> handed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued.swap(work_queue_);
    handed.swap(handback_);
  }
  for (auto& c : queued) CloseConnection(std::move(c));
  for (auto& c : handed) CloseConnection(std::move(c));
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

HttpServer::Counters HttpServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void HttpServer::WakeDispatcher() {
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void HttpServer::CloseConnection(std::unique_ptr<Connection> conn) {
  if (conn == nullptr) return;
  if (conn->fd >= 0) ::close(conn->fd);
  std::lock_guard<std::mutex> lock(counters_mu_);
  --counters_.connections_open;
  MetricsRegistry::Global()
      .GetGauge("rdfa_http_open_connections", "Open HTTP connections")
      .Set(static_cast<double>(counters_.connections_open));
}

void HttpServer::DispatcherLoop() {
  // Connections currently idle between requests, multiplexed via poll.
  std::vector<std::unique_ptr<Connection>> parked;
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_acquire)) {
    // Reclaim connections workers finished with.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& c : handback_) parked.push_back(std::move(c));
      handback_.clear();
    }
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& c : parked) fds.push_back({c->fd, POLLIN, 0});
    // Connections accepted below join `parked` after fds was built; only
    // the first `polled` entries have a pollfd this round.
    const size_t polled = parked.size();
    int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {  // drain wake bytes
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (fds[0].revents != 0) {
      while (true) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN: drained
        size_t open;
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          open = counters_.connections_open;
        }
        if (open >= options_.max_connections) {
          ::close(fd);
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.connections_rejected;
          continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Workers read blocking with this budget: a mid-request stall
        // answers 408 instead of pinning a worker forever.
        long ms = static_cast<long>(options_.read_timeout_ms);
        timeval tv{ms / 1000, (ms % 1000) * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.connections_accepted;
          ++counters_.connections_open;
          MetricsRegistry::Global()
              .GetGauge("rdfa_http_open_connections", "Open HTTP connections")
              .Set(static_cast<double>(counters_.connections_open));
        }
        parked.push_back(std::move(conn));
      }
    }
    // Hand readable (or hung-up) parked connections to the workers.
    bool queued_any = false;
    size_t fd_idx = 2;
    for (size_t i = 0; i < polled; ++i, ++fd_idx) {
      if (fds[fd_idx].revents == 0) continue;
      std::lock_guard<std::mutex> lock(mu_);
      work_queue_.push_back(std::move(parked[i]));
      queued_any = true;
    }
    if (queued_any) {
      parked.erase(std::remove(parked.begin(), parked.end(), nullptr),
                   parked.end());
      work_cv_.notify_all();
    }
  }
  for (auto& c : parked) CloseConnection(std::move(c));
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::unique_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !work_queue_.empty(); });
      if (stopping_) return;
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    if (ServeConnection(conn.get())) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        handback_.push_back(std::move(conn));
      }
      WakeDispatcher();
    } else {
      CloseConnection(std::move(conn));
    }
  }
}

bool HttpServer::WriteAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away mid-response; drop the connection
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool HttpServer::ServeConnection(Connection* conn) {
  HttpRequestParser parser(options_.max_header_bytes, options_.max_body_bytes);
  int reads = 0;
  while (running_.load(std::memory_order_acquire)) {
    HttpRequest req;
    int error_status = 400;
    ParseState state = parser.Feed(&conn->buffer, &req, &error_status);
    if (state == ParseState::kError) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.parse_errors;
      }
      MetricsRegistry::Global()
          .GetCounter("rdfa_http_parse_errors_total",
                      "Requests rejected by the HTTP parser")
          .Increment();
      WriteAll(conn->fd,
               RenderHttpResponse(
                   error_status, "application/json",
                   endpoint::RequestHandler::ErrorBody(Status::InvalidArgument(
                       "malformed HTTP request")),
                   /*keep_alive=*/false));
      return false;
    }
    if (state == ParseState::kDone) {
      ++conn->requests;
      auto start = std::chrono::steady_clock::now();
      int status = 200;
      std::string type, body;
      Route(req, &status, &type, &body);
      bool keep = req.keep_alive &&
                  conn->requests < options_.max_keepalive_requests;
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      MetricsRegistry& reg = MetricsRegistry::Global();
      reg.GetCounter("rdfa_http_requests_total", "HTTP requests served")
          .Increment();
      reg.GetCounterLabeled("rdfa_http_responses_total", "code",
                            std::to_string(status),
                            "HTTP responses by status code")
          .Increment();
      reg.GetHistogram("rdfa_http_request_ms", Histogram::LatencyBoundsMs(),
                       "HTTP request service time (parse to response write)")
          .Observe(ms);
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.requests_served;
      }
      std::vector<std::string> extra;
      if (status == 405) extra.push_back("Allow: GET, POST");
      if (!WriteAll(conn->fd,
                    RenderHttpResponse(status, type, body, keep, extra))) {
        return false;
      }
      if (!keep) return false;
      continue;  // drain pipelined requests already buffered
    }
    // kNeedMore: nothing complete in the buffer. Once this wakeup's data is
    // drained and no request is pending, park the connection again.
    if (conn->buffer.empty() && reads > 0) return true;
    char chunk[16 * 1024];
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    ++reads;
    if (n == 0) return false;  // clean EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (conn->buffer.empty()) return true;  // spurious wake; park
        // Mid-request stall: answer 408 and drop the connection.
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.read_timeouts;
        }
        WriteAll(conn->fd,
                 RenderHttpResponse(
                     408, "application/json",
                     endpoint::RequestHandler::ErrorBody(
                         Status::DeadlineExceeded("request read timed out")),
                     /*keep_alive=*/false));
        return false;
      }
      return false;
    }
    conn->buffer.append(chunk, static_cast<size_t>(n));
  }
  return false;  // server stopping
}

void HttpServer::Route(const HttpRequest& req, int* status, std::string* type,
                       std::string* body) {
  using endpoint::RequestHandler;
  *type = "application/json";
  if (req.method != "GET" && req.method != "POST") {
    *status = 405;
    *body = RequestHandler::ErrorBody(
        Status::Unsupported("method " + req.method + " not allowed"));
    return;
  }

  if (req.path == "/healthz") {
    *status = 200;
    *type = "text/plain";
    *body = "ok\n";
    return;
  }
  if (req.path == "/metrics") {
    QueryRegistry::Global().UpdateStageGauges();
    *status = 200;
    *type = "text/plain; version=0.0.4";
    *body = MetricsRegistry::Global().PrometheusText();
    return;
  }

  if (req.path != "/sparql" && req.path != "/explain") {
    *status = 404;
    *body = RequestHandler::ErrorBody(
        Status::NotFound("no route for " + req.path));
    return;
  }

  // Collect query-string parameters, then (for urlencoded POSTs) the body
  // form — later pairs never override the query string, matching the "first
  // occurrence wins" lookup.
  std::vector<std::pair<std::string, std::string>> params;
  if (!ParseUrlEncodedForm(req.raw_query, &params)) {
    *status = 400;
    *body = RequestHandler::ErrorBody(
        Status::InvalidArgument("invalid percent-encoding in query string"));
    return;
  }
  std::string query_text;
  const std::string* q = FindParam(params, "query");
  if (q != nullptr) query_text = *q;
  if (req.method == "POST") {
    std::string content_type =
        ToLowerAscii(req.Header("content-type"));
    size_t semi = content_type.find(';');
    if (semi != std::string::npos) {
      content_type = std::string(TrimWhitespace(content_type.substr(0, semi)));
    }
    if (content_type == "application/x-www-form-urlencoded" ||
        (content_type.empty() && !req.body.empty())) {
      std::vector<std::pair<std::string, std::string>> form;
      if (!ParseUrlEncodedForm(req.body, &form)) {
        *status = 400;
        *body = RequestHandler::ErrorBody(Status::InvalidArgument(
            "invalid percent-encoding in form body"));
        return;
      }
      for (auto& kv : form) params.push_back(std::move(kv));
      if (q == nullptr) {
        const std::string* bq = FindParam(params, "query");
        if (bq != nullptr) query_text = *bq;
      }
    } else if (content_type == "application/sparql-query") {
      query_text = req.body;
    } else {
      *status = 415;
      *body = RequestHandler::ErrorBody(Status::Unsupported(
          "unsupported content type: " + content_type));
      return;
    }
  }
  if (query_text.empty()) {
    *status = 400;
    *body = RequestHandler::ErrorBody(
        Status::InvalidArgument("missing required parameter: query"));
    return;
  }

  if (req.path == "/explain") {
    Result<std::string> plan = handler_->Explain(query_text);
    if (!plan.ok()) {
      *status = RequestHandler::HttpStatusFor(plan.status());
      *body = RequestHandler::ErrorBody(plan.status());
      return;
    }
    *status = 200;
    *body = std::move(plan).value();
    return;
  }

  // /sparql: negotiate the serialization (format= beats Accept), cap the
  // requested timeout, and run the shared pipeline.
  endpoint::EndpointRequest er;
  er.query = std::move(query_text);
  const std::string* timeout = FindParam(params, "timeout");
  if (timeout != nullptr) {
    double ms = std::strtod(timeout->c_str(), nullptr);
    er.timeout_ms = ms < 0 ? 0 : ms;
  }
  const std::string* format = FindParam(params, "format");
  std::string accept = format != nullptr
                           ? *format
                           : std::string(req.Header("accept"));
  if (!endpoint::NegotiateFormat(accept, &er.format)) {
    *status = 406;
    *body = RequestHandler::ErrorBody(
        Status::Unsupported("no supported result format in: " + accept));
    return;
  }
  endpoint::EndpointResponse resp = handler_->Handle(er);
  *status = resp.http_status;
  *type = std::move(resp.content_type);
  *body = std::move(resp.body);
}

}  // namespace rdfa::server
