#ifndef RDFA_SERVER_HTTP_SERVER_H_
#define RDFA_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "endpoint/request_handler.h"
#include "server/http_util.h"

namespace rdfa::server {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (tests and the in-process bench); the bound
  /// port is available from port() after Start().
  uint16_t port = 0;
  /// Worker threads executing requests. Idle keep-alive connections cost no
  /// worker — they park in the dispatcher's poll set — so a handful of
  /// workers can serve thousands of open connections.
  int worker_threads = 4;
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 << 20;
  /// Cap for (and default of) the per-request `timeout=` parameter, applied
  /// by the RequestHandler. 0 = uncapped.
  double max_timeout_ms = 30'000;
  /// A worker waiting for the rest of a partially received request gives
  /// the client this long per read before answering 408 and closing.
  double read_timeout_ms = 10'000;
  /// Hard ceiling on concurrently open connections; accepts beyond it are
  /// closed immediately (visible as rdfa_http_conns_rejected_total).
  size_t max_connections = 4096;
  /// Requests served on one connection before the server forces a close
  /// (bounds per-connection state growth under pipelining abuse).
  uint64_t max_keepalive_requests = 100'000;
};

/// A multi-threaded HTTP/1.1 front-end over the shared request pipeline
/// (endpoint::RequestHandler): blocking sockets, one acceptor/dispatcher
/// thread multiplexing idle connections through poll(2), and a fixed worker
/// pool doing request parsing, query execution and response writes.
///
/// Routes:
///   GET/POST /sparql   SPARQL protocol dialect (query=, timeout=, format=)
///   GET      /explain  plan-only JSON for query=
///   GET      /metrics  Prometheus text exposition
///   GET      /healthz  liveness probe
///
/// Lifecycle of a connection: accept → poll set → (readable) work queue →
/// worker parses + serves until its buffer drains → back to the poll set.
/// Pipelined requests drain in the worker without re-entering the poll set,
/// so back-to-back requests on one connection stay in order.
class HttpServer {
 public:
  HttpServer(endpoint::RequestHandler* handler, HttpServerOptions options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the dispatcher + workers. InvalidArgument /
  /// Internal on socket failures (message carries errno text).
  Status Start();
  /// Stops accepting, closes every connection, joins every thread.
  /// Idempotent; also invoked by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Monotonic counters for tests and the /healthz body. Slot accounting:
  /// `connections_open` must return to 0 once every client is gone.
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;
    uint64_t connections_open = 0;
    uint64_t requests_served = 0;
    uint64_t parse_errors = 0;
    uint64_t read_timeouts = 0;
  };
  Counters counters() const;

 private:
  struct Connection {
    int fd = -1;
    std::string buffer;        ///< accumulated unparsed input
    uint64_t requests = 0;     ///< served on this connection
  };

  void DispatcherLoop();
  void WorkerLoop();
  /// Serves requests from conn until its buffer has no complete request.
  /// Returns false when the connection must close (error, Connection:
  /// close, EOF); true to park it back in the poll set.
  bool ServeConnection(Connection* conn);
  bool WriteAll(int fd, std::string_view bytes);
  void CloseConnection(std::unique_ptr<Connection> conn);
  void Route(const HttpRequest& request, int* status, std::string* type,
             std::string* body);
  void WakeDispatcher();

  endpoint::RequestHandler* handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread dispatcher_;
  std::vector<std::thread> workers_;

  /// Work queue: connections with (probably) readable data. The dispatcher
  /// and workers exchange ownership of Connection objects through here and
  /// through parked_; a connection is owned by exactly one side at a time.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::unique_ptr<Connection>> work_queue_;
  /// Connections a worker finished with, waiting to rejoin the poll set.
  std::vector<std::unique_ptr<Connection>> handback_;
  bool stopping_ = false;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace rdfa::server

#endif  // RDFA_SERVER_HTTP_SERVER_H_
