// The four worked examples of dissertation §5.1, formulated through the
// analytics-extended faceted-search session (G / sigma / filter buttons),
// plus the Fig 6.2 query and the Fig 6.3 answer-frame reload.
//
// Build & run:  ./build/examples/product_analytics

#include <cstdio>
#include <string>

#include "analytics/answer_frame.h"
#include "analytics/session.h"
#include "rdf/rdfs.h"
#include "viz/chart.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

void Check(const rdfa::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "action failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Value(rdfa::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  rdfa::rdf::Graph g;
  rdfa::workload::BuildRunningExample(&g);
  rdfa::rdf::MaterializeRdfsClosure(&g);

  // ---- Example 1: AVG without GROUP BY -------------------------------
  {
    std::printf("=== Example 1: avg price of 2-USB laptops from US companies "
                "===\n");
    rdfa::analytics::AnalyticsSession s(&g);
    Check(s.fs().ClickClass(kEx + "Laptop"));
    Check(s.fs().ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                            rdfa::rdf::Term::Iri(kEx + "USA")));
    Check(s.fs().ClickRange({{kEx + "USBPorts"}}, 2, 2));
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    Check(s.ClickAggregate(m));
    std::printf("HIFUN: %s\n", Value(s.BuildHifunQuery()).ToString().c_str());
    auto af = Value(s.Execute());
    std::printf("%s\n", rdfa::viz::RenderTable(af.table()).c_str());
  }

  // ---- Example 2: COUNT with GROUP BY on a path ------------------------
  {
    std::printf("=== Example 2: count of laptops by manufacturer's country "
                "===\n");
    rdfa::analytics::AnalyticsSession s(&g);
    Check(s.fs().ClickClass(kEx + "Laptop"));
    rdfa::analytics::GroupingSpec grp;
    grp.path = {kEx + "manufacturer", kEx + "origin"};
    Check(s.ClickGroupBy(grp));
    rdfa::analytics::MeasureSpec m;
    m.ops = {rdfa::hifun::AggOp::kCount};
    Check(s.ClickAggregate(m));
    auto af = Value(s.Execute());
    std::printf("%s\n", rdfa::viz::RenderTable(af.table()).c_str());
  }

  // ---- Fig 6.2: several aggregates, two groupings, range filter --------
  rdfa::analytics::AnalyticsSession session(&g);
  {
    std::printf("=== Fig 6.2: avg+sum+max price of laptops with 2..4 USB "
                "ports by manufacturer and origin ===\n");
    Check(session.fs().ClickClass(kEx + "Laptop"));
    Check(session.fs().ClickRange({{kEx + "USBPorts"}}, 2, 4));
    rdfa::analytics::GroupingSpec by_man;
    by_man.path = {kEx + "manufacturer"};
    Check(session.ClickGroupBy(by_man));
    rdfa::analytics::GroupingSpec by_origin;
    by_origin.path = {kEx + "manufacturer", kEx + "origin"};
    Check(session.ClickGroupBy(by_origin));
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg, rdfa::hifun::AggOp::kSum,
             rdfa::hifun::AggOp::kMax};
    Check(session.ClickAggregate(m));
    std::printf("generated SPARQL:\n%s\n\n",
                Value(session.BuildSparql()).c_str());
    auto af = Value(session.Execute());
    std::printf("%s\n", rdfa::viz::RenderTable(af.table()).c_str());

    // 2D chart of the result (Fig 6.4).
    auto series = Value(rdfa::viz::SeriesFromTable(
        af.table(), af.table().columns()[0], af.table().columns()[2]));
    std::printf("sum of prices by manufacturer:\n%s\n",
                rdfa::viz::RenderBarChart(series).c_str());
  }

  // ---- Example 4: HAVING via answer-frame reload (Figs 5.2 / 6.3b) -----
  {
    std::printf("=== Example 4: keep groups with avg price >= 900 (via AF "
                "reload) ===\n");
    rdfa::rdf::Graph af_graph;
    auto nested = Value(session.ExploreAnswer(&af_graph));
    std::printf("answer reloaded as %zu-triple dataset; rows: %zu\n",
                af_graph.size(), nested->fs().current().ext.size());
    Check(nested->fs().ClickRange(
        {{rdfa::analytics::AnswerFrame::ColumnIri("agg1")}}, 900,
        std::nullopt));
    std::printf("%s\n", nested->fs().RenderText().c_str());
  }
  return 0;
}
