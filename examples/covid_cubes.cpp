// Reproduces the dissertation's companion systems (1a/1b): statistical CSV
// data uploaded by a user, imported as RDF, analyzed, and laid out as a 3D
// "cube city" plus a spiral placement of values (§6.3).
//
// Build & run:  ./build/examples/covid_cubes

#include <cstdio>
#include <string>
#include <vector>

#include "sparql/executor.h"
#include "sparql/value.h"
#include "viz/cubes.h"
#include "viz/spiral.h"
#include "viz/table_render.h"
#include "workload/csv_import.h"

int main() {
  // A small COVID-style statistical dataset, as a user would upload it.
  const char* csv =
      "country,cases,deaths,recovered\n"
      "Greece,120,4,80\n"
      "Italy,900,45,600\n"
      "France,700,30,520\n"
      "Germany,650,20,500\n"
      "Spain,820,38,560\n"
      "Portugal,210,6,150\n";

  rdfa::rdf::Graph g;
  auto added = rdfa::workload::ImportCsv(csv, "urn:covid#", &g);
  if (!added.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 added.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu triples from CSV\n\n", added.value());

  // The imported rows are ordinary RDF: query them.
  auto table = rdfa::sparql::ExecuteQueryString(&g, R"(
    SELECT ?country ?cases ?deaths ?recovered
    WHERE {
      ?r <urn:covid#country> ?country .
      ?r <urn:covid#cases> ?cases .
      ?r <urn:covid#deaths> ?deaths .
      ?r <urn:covid#recovered> ?recovered .
    } ORDER BY DESC(?cases)
  )");
  if (!table.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", rdfa::viz::RenderTable(table.value()).c_str());

  // 3D cube city: one multi-storey cube per country (system 1a metaphor).
  auto city = rdfa::viz::BuildCubeCity(table.value(), "country");
  if (!city.ok()) {
    std::fprintf(stderr, "cube city failed: %s\n",
                 city.status().ToString().c_str());
    return 1;
  }
  std::printf("cube city scene (%zu cubes):\n%s\n\n", city.value().size(),
              rdfa::viz::CubeCityToJson(city.value()).c_str());

  // Spiral layout of case counts: biggest in the center (JIIS companion
  // algorithm).
  std::vector<std::pair<std::string, double>> values;
  for (size_t r = 0; r < table.value().num_rows(); ++r) {
    values.push_back(
        {rdfa::viz::DisplayTerm(table.value().at(r, 0)),
         *rdfa::sparql::Value::FromTerm(table.value().at(r, 1)).AsNumeric()});
  }
  auto layout = rdfa::viz::SpiralLayout(values);
  std::printf("spiral layout of case counts:\n%s",
              rdfa::viz::RenderSpiral(layout, 60, 24).c_str());
  return 0;
}
