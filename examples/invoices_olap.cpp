// OLAP over the invoices cube (dissertation §7.2, Figs 7.1/7.2): roll-up,
// drill-down, slice, dice and pivot expressed through the interaction model.
//
// Build & run:  ./build/examples/invoices_olap

#include <cstdio>
#include <string>

#include "analytics/olap.h"
#include "viz/table_render.h"
#include "workload/invoices.h"

namespace {

const std::string kInv = rdfa::workload::kInvoiceNs;

void Check(const rdfa::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "action failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

void Show(const char* title, rdfa::Result<rdfa::analytics::AnswerFrame> af) {
  if (!af.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", title,
                 af.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("=== %s ===\n%s\n", title,
              rdfa::viz::RenderTable(af.value().table()).c_str());
}

}  // namespace

int main() {
  rdfa::rdf::Graph g;
  rdfa::workload::BuildInvoicesExample(&g);
  std::printf("invoices example: %zu triples\n\n", g.size());

  rdfa::analytics::AnalyticsSession session(&g);
  Check(session.fs().ClickClass(kInv + "Invoice"));

  rdfa::analytics::Dimension time;
  time.name = "time";
  time.levels = {
      {"date", {kInv + "hasDate"}, ""},
      {"month", {kInv + "hasDate"}, "MONTH"},
      {"year", {kInv + "hasDate"}, "YEAR"},
  };
  rdfa::analytics::Dimension product;
  product.name = "product";
  product.levels = {
      {"product", {kInv + "delivers"}, ""},
      {"brand", {kInv + "delivers", kInv + "brand"}, ""},
  };
  rdfa::analytics::MeasureSpec measure;
  measure.path = {kInv + "inQuantity"};
  measure.ops = {rdfa::hifun::AggOp::kSum};

  rdfa::analytics::OlapView cube(&session, {time, product}, measure);

  Show("base cube: SUM(quantity) by date x product", cube.Materialize());

  Check(cube.RollUp("time"));
  Show("roll-up time to month (Fig 7.2)", cube.Materialize());

  Check(cube.RollUp("product"));
  Show("roll-up product to brand", cube.Materialize());

  Check(cube.DrillDown("time"));
  Show("drill-down time back to date", cube.Materialize());

  Check(cube.RollUp("time"));
  Check(cube.RollUp("time"));  // year
  cube.Pivot();
  Show("pivot (brand first) at year level", cube.Materialize());

  Check(cube.Slice("product", rdfa::rdf::Term::Iri(kInv + "BrandA")));
  Show("slice product = BrandA (year totals)", cube.Materialize());

  // Dice on a fresh numeric dimension: invoices with quantity 100..200.
  rdfa::analytics::AnalyticsSession session2(&g);
  Check(session2.fs().ClickClass(kInv + "Invoice"));
  rdfa::analytics::Dimension qty;
  qty.name = "qty";
  qty.levels = {{"quantity", {kInv + "inQuantity"}, ""}};
  rdfa::analytics::MeasureSpec count_measure;
  count_measure.ops = {rdfa::hifun::AggOp::kCount};
  rdfa::analytics::OlapView cube2(&session2, {qty}, count_measure);
  Check(cube2.Dice("qty", 100, 200));
  Show("dice quantity in [100, 200]: invoice counts", cube2.Materialize());
  return 0;
}
