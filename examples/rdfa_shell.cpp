// Interactive RDF-ANALYTICS shell: a terminal rendition of the Chapter 6
// system demonstration. Drives the full stack — faceted exploration,
// analytics buttons, HIFUN synthesis, SPARQL translation, answer frame,
// nested exploration, keyword search — through line commands.
//
// Run interactively:   ./build/examples/rdfa_shell
// Scripted demo:       ./build/examples/rdfa_shell --demo
// Type `help` for the command list.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "analytics/expressiveness.h"
#include "analytics/session.h"
#include "common/metrics.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/query_registry.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "endpoint/endpoint.h"
#include "fs/facets.h"
#include "rdf/binary_io.h"
#include "rdf/mvcc.h"
#include "rdf/rdfs.h"
#include "rdf/turtle.h"
#include "search/keyword.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"
#include "viz/chart.h"
#include "viz/table_render.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace {

struct Shell {
  // The base graph plus one graph per answer-frame nesting level. Shared
  // pointers so the base slot can alias an MvccGraph snapshot in WAL mode.
  std::vector<std::shared_ptr<rdfa::rdf::Graph>> graphs;
  std::vector<std::unique_ptr<rdfa::analytics::AnalyticsSession>> sessions;
  std::string default_ns;
  int threads = 1;       ///< morsel-parallelism budget for exec
  /// --join-strategy=adaptive|nlj|hash|merge: join-strategy override.
  rdfa::sparql::JoinStrategy join_strategy =
      rdfa::sparql::JoinStrategy::kAdaptive;
  bool use_dp = true;     ///< planner-v2 DP ordering; --no-dp disables
  double timeout_ms = 0;  ///< per-exec deadline; 0 = none
  bool pending_cancel = false;  ///< `cancel` arms this for the next exec
  bool trace_enabled = false;   ///< `trace on` / --trace-out
  std::string trace_dir;        ///< --trace-out=<dir>: write per-exec traces
  int64_t trace_seq = 0;
  std::shared_ptr<rdfa::Tracer> last_tracer;  ///< tracer of the last exec
  std::unique_ptr<rdfa::QueryLog> query_log;  ///< --query-log=<path>
  bool cache_on = false;   ///< `cache on|off` / --cache-mb=
  size_t cache_mb = 64;    ///< answer-cache byte budget when the cache is on
  std::string slow_dir;    ///< --slow-query-dir=: slow-query capture ring
  double slow_ms = 250;    ///< --slow-query-ms=: capture threshold
  int slow_max = 32;       ///< --slow-query-max=: ring size (files kept)
  rdfa::QueryContext exec_ctx;  ///< the context armed for the current exec
  std::unique_ptr<rdfa::endpoint::SimulatedEndpoint> endpoint;
  const rdfa::rdf::Graph* endpoint_graph = nullptr;
  /// --wal=<path>: the durable MVCC store. The shell's base graph is then a
  /// pinned snapshot of its head; `update`/`walstress` commit through it.
  std::unique_ptr<rdfa::rdf::MvccGraph> mvcc;
  std::string wal_path;

  /// The cache-serving endpoint over the *current* graph, (re)built lazily
  /// whenever the graph stack changed (load/example/explore/pop), so cached
  /// answers always come from the dataset on screen. Mutations of the same
  /// graph (infer) are handled by generation stamping, not by rebuilds.
  rdfa::endpoint::SimulatedEndpoint& Endpoint() {
    if (endpoint == nullptr || endpoint_graph != &graph()) {
      endpoint = std::make_unique<rdfa::endpoint::SimulatedEndpoint>(
          &graph(), rdfa::endpoint::LatencyProfile::Local(), true);
      rdfa::CacheOptions opts;
      opts.max_bytes = cache_mb << 20;
      opts.max_entries = 4096;
      opts.enabled = cache_mb > 0;
      endpoint->set_cache_options(opts);
      rdfa::endpoint::AdmissionOptions adm;
      adm.base_timeout_ms = 0;  // the shell's own `timeout` command governs
      endpoint->set_admission(adm);
      endpoint->set_thread_count(threads);
      endpoint->set_join_strategy(join_strategy);
      endpoint->set_use_dp(use_dp);
      if (!slow_dir.empty()) {
        endpoint->set_slow_query_capture(slow_dir, slow_ms, slow_max);
      }
      endpoint_graph = &graph();
    }
    return *endpoint;
  }

  /// Builds the deadline/cancellation context for one exec and installs it
  /// on the current session.
  void ArmContext() {
    rdfa::QueryContext ctx = timeout_ms > 0
                                 ? rdfa::QueryContext::WithDeadlineMs(timeout_ms)
                                 : rdfa::QueryContext();
    if (pending_cancel) {
      ctx.Cancel();
      pending_cancel = false;
    }
    if (trace_enabled) {
      last_tracer = std::make_shared<rdfa::Tracer>();
      ctx.set_tracer(last_tracer);
    } else {
      last_tracer.reset();
    }
    exec_ctx = ctx;
    session().set_query_context(std::move(ctx));
  }

  /// Writes the last exec's trace file (if armed) and query-log line.
  /// Returns the trace path, empty if none was written.
  std::string FinishExec(const rdfa::Status& status) {
    std::string trace_path;
    if (last_tracer != nullptr && !trace_dir.empty()) {
      trace_path = rdfa::WriteTraceFile(trace_dir, "shell-query", trace_seq++,
                                        last_tracer->ToChromeJson());
      if (trace_path.empty()) {
        std::printf("error: cannot write trace under %s\n", trace_dir.c_str());
      }
    }
    if (query_log != nullptr && query_log->enabled()) {
      const auto& stats = session().last_exec_stats();
      rdfa::QueryLogRecord rec;
      auto sparql = session().BuildSparql();
      if (sparql.ok()) {
        rec.query_hash = rdfa::HashQueryText(sparql.value());
        rec.query_head = sparql.value().substr(
            0, std::min<size_t>(sparql.value().size(), 60));
      }
      rec.outcome = status.ok() ? "ok"
                    : status.code() == rdfa::StatusCode::kCancelled
                        ? "cancelled"
                    : status.code() == rdfa::StatusCode::kDeadlineExceeded
                        ? "timed_out"
                        : "error";
      rec.total_ms = stats.total_ms;
      rec.rows = static_cast<int64_t>(session().answer().table().num_rows());
      rec.exec_stats_json = stats.ToJson();
      rec.trace_file = trace_path;
      query_log->Write(rec);
    }
    return trace_path;
  }

  rdfa::analytics::AnalyticsSession& session() { return *sessions.back(); }
  rdfa::rdf::Graph& graph() { return *graphs.back(); }

  std::string Resolve(const std::string& name) const {
    if (name.find("://") != std::string::npos || name.rfind("urn:", 0) == 0) {
      return name;
    }
    return default_ns + name;
  }

  std::vector<rdfa::fs::PropRef> ResolvePath(const std::string& path) const {
    std::vector<rdfa::fs::PropRef> out;
    for (const std::string& part : rdfa::SplitString(path, '/')) {
      if (!part.empty() && part[0] == '^') {
        out.push_back({Resolve(part.substr(1)), true});
      } else {
        out.push_back({Resolve(part), false});
      }
    }
    return out;
  }

  std::vector<std::string> ResolvePlainPath(const std::string& path) const {
    std::vector<std::string> out;
    for (const std::string& part : rdfa::SplitString(path, '/')) {
      out.push_back(Resolve(part));
    }
    return out;
  }

  void Reset(std::shared_ptr<rdfa::rdf::Graph> g) {
    graphs.clear();
    sessions.clear();
    graphs.push_back(std::move(g));
    sessions.push_back(
        std::make_unique<rdfa::analytics::AnalyticsSession>(graphs[0].get()));
    sessions.back()->set_thread_count(threads);
    sessions.back()->set_join_strategy(join_strategy);
    sessions.back()->set_use_dp(use_dp);
  }

  /// Re-pins the WAL head after a commit (or at open) and restarts the
  /// session on it. Exploration state does not survive a commit — the new
  /// epoch is a different immutable graph version.
  void RefreshWalHead() {
    rdfa::rdf::MvccGraph::Pin pin = mvcc->Snapshot();
    Reset(pin.graph);
  }

  /// One deterministic line of Graph::Stats(), for crash-recovery diffing.
  std::string KgStatsLine() {
    const rdfa::rdf::GraphStats& s = graph().Stats();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "triples=%llu subjects=%llu predicates=%llu objects=%llu",
                  static_cast<unsigned long long>(s.triples),
                  static_cast<unsigned long long>(s.distinct_subjects),
                  static_cast<unsigned long long>(s.distinct_predicates),
                  static_cast<unsigned long long>(s.distinct_objects));
    return buf;
  }
};

void PrintHelp() {
  std::printf(R"(commands:
  example products|invoices     load a built-in dataset
  load <file>                   load a Turtle file or a binary snapshot
                                (RDFA1/2/3, auto-detected by magic)
  save <file>                   write the current dataset as a compressed
                                RDFA3 snapshot (mmap-able)
  mmap <file>                   open an RDFA3 snapshot without decoding it:
                                queries read the mapped file lazily; the
                                first mutation materializes to heap
  ns <iri>                      set the default namespace for bare names
  infer                         materialize the RDFS closure
  show                          render the two-frame GUI (facets + objects)
  click <Class>                 class-based transition
  value <p1/p2/...> <v>         click a value at the end of a property path
  range <p1/...> <min> <max>    numeric range filter ('-' = unbounded)
  buckets <prop> <n>            show a facet's values grouped into intervals
  back                          pop the current state
  keyword <words...>            restart the session from a keyword query
  group <p1/...> [FN]           G button (optional transform, e.g. YEAR)
  agg <p1/...|.> OP[,OP...]     sigma button ('.' = count the items)
  having <op> <value>           restriction on the final answer
  hifun                         show the synthesized HIFUN query
  check                         expressiveness report for the current query
  sparql                        show the translated SPARQL
  explain [sparql]              plan-only JSON: join order, strategies,
                                permutations, cost estimates (no execution);
                                defaults to the session's synthesized query
  explain analyze [sparql]      execute and print plan + nested per-operator
                                profile (wall time, rows, counters) + stats
                                as one JSON line
  ps                            live in-flight queries (id, stage, rows,
                                deadline left, snapshot epoch)
  kill <id>                     cooperatively cancel an in-flight query
  exec                          run the analytic query (fills the AF)
  threads <n>                   parallelism for exec (results identical)
                                (planner flags: --join-strategy=adaptive|
                                nlj|hash|merge, --no-dp turns off the
                                planner-v2 DP join ordering)
  timeout <ms>                  deadline for each exec (0 = none); a tripped
                                exec returns DeadlineExceeded, partial stats
  cancel                        cancel the next exec (it fails fast with
                                Cancelled — the cooperative-abort path)
  trace on|off                  per-exec span tracing; with --trace-out=<dir>
                                each exec writes Chrome trace JSON (Perfetto)
  cache on|off|stats            generation-checked answer + plan cache for
                                exec (re-running an unchanged query is a hit;
                                any mutation invalidates); --cache-mb=<n>
                                sets the byte budget and turns it on
                                (--slow-query-dir=<dir> --slow-query-ms=<t>
                                --slow-query-max=<n>: cached execs slower
                                than t ms dump plan+profile into a bounded
                                ring of n files under dir)
  update <sparql update>        commit a SPARQL update through the WAL
                                (needs --wal=<path>; durable before visible)
  walstress <n> [batch]         n synthetic durable inserts, committed per
                                batch (crash-recovery exercise; needs --wal)
  kgstats                       one deterministic graph-statistics line
                                (crash-recovery diffing)
  metrics                       process metrics, Prometheus text format
  stats                         execution statistics of the last exec
  chart                         bar-chart the answer frame
  json | csv                    export the answer frame (W3C formats)
  explore                       load the AF as a new dataset (nesting)
  pop                           leave the nested dataset
  quit
)");
}

rdfa::hifun::AggOp ParseOp(const std::string& s) {
  std::string u = rdfa::ToUpperAscii(s);
  if (u == "AVG") return rdfa::hifun::AggOp::kAvg;
  if (u == "COUNT") return rdfa::hifun::AggOp::kCount;
  if (u == "MIN") return rdfa::hifun::AggOp::kMin;
  if (u == "MAX") return rdfa::hifun::AggOp::kMax;
  return rdfa::hifun::AggOp::kSum;
}

bool HandleLine(Shell& shell, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return true;
  auto report = [](const rdfa::Status& st) {
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    return st.ok();
  };

  if (cmd == "quit" || cmd == "exit") return false;
  if ((cmd == "example" || cmd == "load" || cmd == "mmap") &&
      shell.mvcc != nullptr) {
    std::printf("error: %s is unavailable in --wal mode — the WAL is the "
                "source of truth; mutate with update/walstress\n",
                cmd.c_str());
    return true;
  }
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "example") {
    std::string which;
    in >> which;
    auto g = std::make_unique<rdfa::rdf::Graph>();
    if (which == "invoices") {
      rdfa::workload::BuildInvoicesExample(g.get());
      shell.default_ns = rdfa::workload::kInvoiceNs;
    } else {
      rdfa::workload::BuildRunningExample(g.get());
      shell.default_ns = rdfa::workload::kExampleNs;
    }
    std::printf("loaded %zu triples (ns %s)\n", g->size(),
                shell.default_ns.c_str());
    shell.Reset(std::move(g));
  } else if (cmd == "load") {
    std::string path;
    in >> path;
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::printf("error: cannot open %s\n", path.c_str());
      return true;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string& bytes = buffer.str();
    auto g = std::make_unique<rdfa::rdf::Graph>();
    // Binary snapshots (any generation) announce themselves with an
    // "RDFA<d>\n" magic; everything else is treated as Turtle.
    if (bytes.rfind("RDFA", 0) == 0) {
      if (report(rdfa::rdf::LoadBinary(bytes, g.get()))) {
        std::printf("loaded %zu triples (binary snapshot)\n", g->size());
        shell.Reset(std::move(g));
      }
    } else {
      rdfa::rdf::PrefixMap prefixes;
      if (report(rdfa::rdf::ParseTurtle(bytes, g.get(), &prefixes))) {
        std::printf("loaded %zu triples\n", g->size());
        shell.Reset(std::move(g));
      }
    }
  } else if (cmd == "save") {
    std::string path;
    in >> path;
    if (path.empty()) {
      std::printf("usage: save <file>\n");
      return true;
    }
    if (report(rdfa::rdf::SaveBinaryFile(shell.graph(), path))) {
      std::printf("saved %zu triples to %s (RDFA3)\n", shell.graph().size(),
                  path.c_str());
    }
  } else if (cmd == "mmap") {
    std::string path;
    in >> path;
    if (path.empty()) {
      std::printf("usage: mmap <file>\n");
      return true;
    }
    auto mapped = rdfa::rdf::OpenMappedSnapshot(path);
    if (!mapped.ok()) {
      std::printf("error: %s\n", mapped.status().ToString().c_str());
      return true;
    }
    std::printf("mapped %zu triples from %s (lazy decode; mutations "
                "materialize to heap)\n",
                mapped.value()->size(), path.c_str());
    shell.Reset(std::move(mapped).value());
  } else if (cmd == "ns") {
    in >> shell.default_ns;
  } else if (cmd == "infer") {
    std::printf("inferred %zu triples\n",
                rdfa::rdf::MaterializeRdfsClosure(&shell.graph()));
    // Rebuild the session so the schema view sees the closure.
    auto base = std::move(shell.graphs.back());
    shell.Reset(std::move(base));
  } else if (cmd == "show") {
    std::printf("%s", shell.session().fs().RenderText().c_str());
  } else if (cmd == "click") {
    std::string cls;
    in >> cls;
    report(shell.session().fs().ClickClass(shell.Resolve(cls)));
  } else if (cmd == "value") {
    std::string path, value;
    in >> path >> value;
    rdfa::rdf::Term term;
    if (!value.empty() &&
        (std::isdigit(static_cast<unsigned char>(value[0])) ||
         value[0] == '-')) {
      term = rdfa::rdf::Term::Integer(std::strtoll(value.c_str(), nullptr, 10));
    } else {
      term = rdfa::rdf::Term::Iri(shell.Resolve(value));
    }
    report(shell.session().fs().ClickValue(shell.ResolvePath(path), term));
  } else if (cmd == "range") {
    std::string path, lo, hi;
    in >> path >> lo >> hi;
    std::optional<double> min, max;
    if (lo != "-") min = std::strtod(lo.c_str(), nullptr);
    if (hi != "-") max = std::strtod(hi.c_str(), nullptr);
    report(shell.session().fs().ClickRange(shell.ResolvePath(path), min, max));
  } else if (cmd == "buckets") {
    std::string prop;
    size_t n = 5;
    in >> prop >> n;
    auto facet = shell.session().fs().ExpandPath(shell.ResolvePath(prop));
    auto buckets =
        rdfa::fs::BucketNumericFacet(shell.graph(), facet, n == 0 ? 5 : n);
    for (const auto& b : buckets) {
      std::printf("[%g, %g): %zu\n", b.lo, b.hi, b.count);
    }
  } else if (cmd == "back") {
    report(shell.session().fs().Back());
  } else if (cmd == "keyword") {
    std::string rest;
    std::getline(in, rest);
    rdfa::search::KeywordIndex index(shell.graph());
    auto ext = index.SearchAsExtension(rest);
    std::printf("%zu hits\n", ext.size());
    if (!ext.empty()) shell.session().fs().StartFromResults(ext);
  } else if (cmd == "group") {
    std::string path, fn;
    in >> path >> fn;
    rdfa::analytics::GroupingSpec g;
    g.path = shell.ResolvePlainPath(path);
    g.derived_function = rdfa::ToUpperAscii(fn);
    report(shell.session().ClickGroupBy(g));
  } else if (cmd == "agg") {
    std::string path, ops;
    in >> path >> ops;
    rdfa::analytics::MeasureSpec m;
    if (path != ".") m.path = shell.ResolvePlainPath(path);
    for (const std::string& op : rdfa::SplitString(ops, ',')) {
      m.ops.push_back(ParseOp(op));
    }
    report(shell.session().ClickAggregate(m));
  } else if (cmd == "having") {
    std::string op;
    double value = 0;
    in >> op >> value;
    shell.session().SetResultRestriction(op, value);
  } else if (cmd == "hifun") {
    auto q = shell.session().BuildHifunQuery();
    if (q.ok()) std::printf("%s\n", q.value().ToString().c_str());
    else report(q.status());
  } else if (cmd == "check") {
    auto q = shell.session().BuildHifunQuery();
    if (!q.ok()) {
      report(q.status());
      return true;
    }
    auto rep = rdfa::analytics::CheckExpressible(q.value());
    std::printf("expressible: %s (about %d actions)\n",
                rep.expressible ? "yes" : "no", rep.estimated_actions);
    for (const std::string& r : rep.reasons) std::printf("  - %s\n", r.c_str());
  } else if (cmd == "sparql") {
    auto s = shell.session().BuildSparql();
    if (s.ok()) std::printf("%s\n", s.value().c_str());
    else report(s.status());
  } else if (cmd == "explain") {
    // `explain [sparql]` prints the plan the executor would run (no data is
    // touched); `explain analyze [sparql]` executes and prints plan +
    // measured operator profile + ExecStats as one JSON line. With no
    // inline query, the session's synthesized SPARQL is explained.
    std::string rest;
    std::getline(in, rest);
    rest = std::string(rdfa::TrimWhitespace(rest));
    bool analyze = false;
    if (rdfa::ToUpperAscii(rest.substr(0, 7)) == "ANALYZE") {
      analyze = true;
      rest = std::string(rdfa::TrimWhitespace(rest.substr(7)));
    }
    std::string text = rest;
    if (text.empty()) {
      auto s = shell.session().BuildSparql();
      if (!report(s.status())) return true;
      text = s.value();
    }
    auto parsed = rdfa::sparql::ParseQuery(text);
    if (!report(parsed.status())) return true;
    rdfa::sparql::Executor exec(&shell.graph());
    exec.set_thread_count(shell.threads);
    exec.set_join_strategy(shell.join_strategy);
    exec.set_use_dp(shell.use_dp);
    std::string plan = exec.ExplainJson(parsed.value());
    if (!analyze) {
      std::printf("%s\n", plan.c_str());
      return true;
    }
    auto tracer = std::make_shared<rdfa::Tracer>();
    rdfa::QueryContext ctx = shell.timeout_ms > 0
        ? rdfa::QueryContext::WithDeadlineMs(shell.timeout_ms)
        : rdfa::QueryContext();
    ctx.set_tracer(tracer);
    exec.set_query_context(std::move(ctx));
    auto result = exec.Execute(parsed.value());
    std::printf("{\"plan\":%s,\"profile\":%s,\"stats\":%s,\"ok\":%s,"
                "\"rows\":%llu}\n",
                plan.c_str(), tracer->ProfileJson().c_str(),
                exec.stats().ToJson().c_str(), result.ok() ? "true" : "false",
                static_cast<unsigned long long>(
                    result.ok() ? result.value().num_rows() : 0));
    if (!result.ok()) report(result.status());
  } else if (cmd == "ps") {
    auto inflight = rdfa::QueryRegistry::Global().Snapshot();
    rdfa::QueryRegistry::Global().UpdateStageGauges();
    if (inflight.empty()) {
      std::printf("no queries in flight\n");
      return true;
    }
    std::printf("%6s %-14s %10s %10s %10s %6s  %s\n", "id", "stage", "rows",
                "elapsed", "deadline", "epoch", "query");
    for (const auto& q : inflight) {
      std::string deadline =
          std::isfinite(q.deadline_remaining_ms)
              ? std::to_string(static_cast<long long>(q.deadline_remaining_ms)) +
                    "ms"
              : "-";
      std::printf("%6lld %-14s %10llu %8.1fms %10s %6llu  %s\n",
                  static_cast<long long>(q.id),
                  q.stage != nullptr ? q.stage : "-",
                  static_cast<unsigned long long>(q.rows), q.elapsed_ms,
                  deadline.c_str(),
                  static_cast<unsigned long long>(q.snapshot_epoch),
                  q.head.c_str());
    }
  } else if (cmd == "kill") {
    long long id = -1;
    in >> id;
    if (id < 0) {
      std::printf("usage: kill <id>   (ids from ps)\n");
      return true;
    }
    if (rdfa::QueryRegistry::Global().Kill(id)) {
      std::printf("query %lld cancelled (it unwinds at its next check)\n", id);
    } else {
      std::printf("no in-flight query with id %lld\n", id);
    }
  } else if (cmd == "exec" && shell.cache_on) {
    // Cached execution: route the synthesized SPARQL through a local
    // endpoint whose generation-checked answer/plan caches make repeated
    // queries (unchanged graph) instant — and the result is installed back
    // into the session so chart/json/csv/explore keep working.
    auto sparql = shell.session().BuildSparql();
    if (!report(sparql.status())) return true;
    shell.ArmContext();
    auto resp = shell.Endpoint().Query(sparql.value(), shell.exec_ctx);
    rdfa::Status outcome = resp.ok() ? resp.value().status : resp.status();
    if (outcome.ok()) {
      shell.session().InstallAnswer(
          rdfa::analytics::AnswerFrame(resp.value().table));
      std::printf("%s", rdfa::viz::RenderTable(resp.value().table).c_str());
      if (resp.value().cache_hit) {
        std::printf("(answer cache hit, %.3f ms)\n", resp.value().total_ms);
      } else if (resp.value().plan_cache_hit) {
        std::printf("(plan cache hit, exec %.3f ms)\n", resp.value().exec_ms);
      }
    } else {
      report(outcome);
    }
    shell.FinishExec(outcome);
  } else if (cmd == "exec") {
    shell.ArmContext();
    auto af = shell.session().Execute();
    if (af.ok()) {
      std::printf("%s",
                  rdfa::viz::RenderTable(af.value().table()).c_str());
    } else {
      report(af.status());
      const auto& stats = shell.session().last_exec_stats();
      if (stats.aborted) {
        std::printf("partial work before the trip: %s\n",
                    stats.Summary().c_str());
      }
    }
    std::string trace_path = shell.FinishExec(af.status());
    if (!trace_path.empty()) {
      std::printf("trace written to %s\n", trace_path.c_str());
    } else if (shell.trace_enabled && shell.last_tracer != nullptr) {
      std::printf("trace: %zu spans recorded (use --trace-out=<dir> to "
                  "write files)\n",
                  shell.last_tracer->span_count());
    }
  } else if (cmd == "trace") {
    std::string mode;
    in >> mode;
    if (mode == "on") {
      shell.trace_enabled = true;
      std::printf("tracing on%s\n",
                  shell.trace_dir.empty()
                      ? " (spans counted; --trace-out=<dir> writes files)"
                      : (": files under " + shell.trace_dir).c_str());
    } else if (mode == "off") {
      shell.trace_enabled = false;
      std::printf("tracing off\n");
    } else {
      std::printf("tracing is %s\n", shell.trace_enabled ? "on" : "off");
    }
  } else if (cmd == "cache") {
    std::string mode;
    in >> mode;
    if (mode == "on") {
      if (shell.cache_mb == 0) shell.cache_mb = 64;
      shell.cache_on = true;
      // Rebuild so the budget takes effect even after `cache off`.
      shell.endpoint.reset();
      shell.endpoint_graph = nullptr;
      std::printf("cache on (%zu MB answer budget + plan cache)\n",
                  shell.cache_mb);
    } else if (mode == "off") {
      shell.cache_on = false;
      std::printf("cache off\n");
    } else if (mode == "stats") {
      if (shell.endpoint == nullptr) {
        std::printf("cache has served nothing yet\n");
      } else {
        auto a = shell.endpoint->answer_cache_stats();
        auto p = shell.endpoint->plan_cache_stats();
        std::printf(
            "answer cache: %llu hits / %llu misses (%.0f%% hit rate), "
            "%zu entries, %zu bytes, %llu evictions, %llu invalidations\n",
            static_cast<unsigned long long>(a.hits),
            static_cast<unsigned long long>(a.misses), 100 * a.HitRate(),
            a.entries, a.bytes, static_cast<unsigned long long>(a.evictions),
            static_cast<unsigned long long>(a.invalidations));
        std::printf(
            "plan cache:   %llu hits / %llu misses (%.0f%% hit rate), "
            "%zu entries, %llu invalidations\n",
            static_cast<unsigned long long>(p.hits),
            static_cast<unsigned long long>(p.misses), 100 * p.HitRate(),
            p.entries, static_cast<unsigned long long>(p.invalidations));
      }
    } else {
      std::printf("cache is %s (try cache on|off|stats)\n",
                  shell.cache_on ? "on" : "off");
    }
  } else if (cmd == "update") {
    if (shell.mvcc == nullptr) {
      std::printf("error: update needs --wal=<path>\n");
      return true;
    }
    std::string rest;
    std::getline(in, rest);
    rest = std::string(rdfa::TrimWhitespace(rest));
    if (rest.empty()) {
      std::printf("usage: update <sparql update>\n");
      return true;
    }
    if (!report(shell.mvcc->BufferUpdate(rest))) return true;
    auto epoch = shell.mvcc->Commit();
    if (!report(epoch.status())) return true;
    shell.RefreshWalHead();
    std::printf("committed epoch %llu (%zu triples)\n",
                static_cast<unsigned long long>(epoch.value()),
                shell.graph().size());
  } else if (cmd == "walstress") {
    // Synthetic durable inserts, committed per batch. The CI crash-recovery
    // smoke kills the shell mid-run and checks that reopening the WAL
    // reconstructs a stats-identical graph.
    if (shell.mvcc == nullptr) {
      std::printf("error: walstress needs --wal=<path>\n");
      return true;
    }
    size_t n = 0, batch = 16;
    in >> n >> batch;
    if (batch == 0) batch = 16;
    const std::string ns =
        shell.default_ns.empty() ? "urn:walstress:" : shell.default_ns;
    for (size_t i = 0; i < n; ++i) {
      shell.mvcc->Insert(rdfa::rdf::Term::Iri(ns + "s" + std::to_string(i)),
                         rdfa::rdf::Term::Iri(ns + "walPoke"),
                         rdfa::rdf::Term::Integer(static_cast<int64_t>(i)));
      if (shell.mvcc->pending_ops() >= batch) {
        auto epoch = shell.mvcc->Commit();
        if (!report(epoch.status())) return true;
      }
    }
    auto epoch = shell.mvcc->Commit();
    if (!report(epoch.status())) return true;
    shell.RefreshWalHead();
    std::printf("walstress done: epoch %llu, %zu triples\n",
                static_cast<unsigned long long>(epoch.value()),
                shell.graph().size());
  } else if (cmd == "kgstats") {
    std::printf("%s\n", shell.KgStatsLine().c_str());
  } else if (cmd == "metrics") {
    rdfa::QueryRegistry::Global().UpdateStageGauges();
    std::printf("%s", rdfa::MetricsRegistry::Global().PrometheusText().c_str());
  } else if (cmd == "timeout") {
    double ms = 0;
    in >> ms;
    shell.timeout_ms = ms < 0 ? 0 : ms;
    if (shell.timeout_ms > 0) {
      std::printf("exec deadline set to %g ms\n", shell.timeout_ms);
    } else {
      std::printf("exec deadline cleared\n");
    }
  } else if (cmd == "cancel") {
    shell.pending_cancel = true;
    std::printf("next exec will be cancelled\n");
  } else if (cmd == "threads") {
    int n = 1;
    in >> n;
    shell.threads = n < 1 ? 1 : n;
    for (auto& s : shell.sessions) s->set_thread_count(shell.threads);
    if (shell.endpoint != nullptr) {
      shell.endpoint->set_thread_count(shell.threads);
    }
    std::printf("exec will use %d thread%s\n", shell.threads,
                shell.threads == 1 ? "" : "s");
  } else if (cmd == "stats") {
    std::printf("%s\n", shell.session().last_exec_stats().Summary().c_str());
  } else if (cmd == "chart") {
    const auto& t = shell.session().answer().table();
    if (t.num_columns() < 2) {
      std::printf("run exec first\n");
      return true;
    }
    auto series = rdfa::viz::SeriesFromTable(
        t, t.columns()[0], t.columns()[t.num_columns() - 1]);
    if (series.ok()) {
      std::printf("%s", rdfa::viz::RenderBarChart(series.value()).c_str());
    } else {
      report(series.status());
    }
  } else if (cmd == "json") {
    std::printf("%s\n",
                rdfa::sparql::WriteResultsJson(shell.session().answer().table())
                    .c_str());
  } else if (cmd == "csv") {
    std::printf("%s",
                rdfa::sparql::WriteResultsCsv(shell.session().answer().table())
                    .c_str());
  } else if (cmd == "explore") {
    auto g = std::make_unique<rdfa::rdf::Graph>();
    auto nested = shell.session().ExploreAnswer(g.get());
    if (nested.ok()) {
      shell.graphs.push_back(std::move(g));
      shell.sessions.push_back(std::move(nested).value());
      shell.sessions.back()->set_thread_count(shell.threads);
      shell.sessions.back()->set_join_strategy(shell.join_strategy);
      shell.sessions.back()->set_use_dp(shell.use_dp);
      std::printf("exploring the answer as a dataset (level %zu)\n",
                  shell.sessions.size() - 1);
    } else {
      report(nested.status());
    }
  } else if (cmd == "pop") {
    if (shell.sessions.size() > 1) {
      shell.sessions.pop_back();
      shell.graphs.pop_back();
      std::printf("back to level %zu\n", shell.sessions.size() - 1);
    } else {
      std::printf("already at the base dataset\n");
    }
  } else {
    std::printf("unknown command '%s' (try help)\n", cmd.c_str());
  }
  return true;
}

int RunDemo(Shell& shell) {
  const char* script[] = {
      "example products",
      "infer",
      "click Laptop",
      "show",
      "value manufacturer/origin USA",
      "range USBPorts 2 4",
      "group manufacturer",
      "agg price AVG,SUM",
      "hifun",
      "check",
      "sparql",
      "exec",
      "chart",
      "explore",
      "show",
      "pop",
  };
  for (const char* line : script) {
    std::printf("rdfa> %s\n", line);
    if (!HandleLine(shell, line)) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 10);
      shell.threads = n < 1 ? 1 : n;
    } else if (arg.rfind("--join-strategy=", 0) == 0) {
      const std::string name = arg.substr(16);
      if (name == "adaptive") {
        shell.join_strategy = rdfa::sparql::JoinStrategy::kAdaptive;
      } else if (name == "nlj") {
        shell.join_strategy = rdfa::sparql::JoinStrategy::kNestedLoop;
      } else if (name == "hash") {
        shell.join_strategy = rdfa::sparql::JoinStrategy::kHash;
      } else if (name == "merge") {
        shell.join_strategy = rdfa::sparql::JoinStrategy::kMerge;
      } else {
        std::fprintf(stderr,
                     "error: --join-strategy wants "
                     "adaptive|nlj|hash|merge, got '%s'\n",
                     name.c_str());
        return 1;
      }
    } else if (arg == "--no-dp") {
      shell.use_dp = false;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      double ms = std::strtod(arg.c_str() + 13, nullptr);
      shell.timeout_ms = ms < 0 ? 0 : ms;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      shell.trace_dir = arg.substr(12);
      shell.trace_enabled = !shell.trace_dir.empty();
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      long mb = std::atol(arg.c_str() + 11);
      shell.cache_mb = mb < 0 ? 0 : static_cast<size_t>(mb);
      shell.cache_on = shell.cache_mb > 0;
    } else if (arg.rfind("--slow-query-dir=", 0) == 0) {
      shell.slow_dir = arg.substr(17);
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      double ms = std::strtod(arg.c_str() + 16, nullptr);
      shell.slow_ms = ms < 0 ? 0 : ms;
    } else if (arg.rfind("--slow-query-max=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 17);
      shell.slow_max = n < 1 ? 1 : n;
    } else if (arg.rfind("--query-log=", 0) == 0) {
      std::string path = arg.substr(12);
      if (!path.empty()) {
        shell.query_log = std::make_unique<rdfa::QueryLog>(path);
      }
    } else if (arg.rfind("--wal=", 0) == 0) {
      shell.wal_path = arg.substr(6);
    }
  }
  if (!shell.wal_path.empty()) {
    // Durable mode: replay the write-ahead log (tolerating a torn tail from
    // a crash mid-append) instead of reparsing any source data.
    rdfa::rdf::MvccGraph::Options opts;
    opts.wal_path = shell.wal_path;
    opts.update_fn = [](rdfa::rdf::Graph* g, const std::string& text) {
      auto applied = rdfa::sparql::ExecuteUpdateString(g, text);
      return applied.ok() ? rdfa::Status::OK() : applied.status();
    };
    auto opened = rdfa::rdf::MvccGraph::Open(std::move(opts));
    if (!opened.ok()) {
      std::fprintf(stderr, "error: cannot open WAL %s: %s\n",
                   shell.wal_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    shell.mvcc = std::move(opened).value();
    const auto info = shell.mvcc->open_info();
    shell.RefreshWalHead();
    std::printf("wal: %s — replayed %llu records (%llu torn bytes "
                "truncated), %zu triples\n",
                shell.wal_path.c_str(),
                static_cast<unsigned long long>(info.replayed_records),
                static_cast<unsigned long long>(info.truncated_bytes),
                shell.graph().size());
  } else {
    shell.Reset(std::make_unique<rdfa::rdf::Graph>());
  }
  if (demo) return RunDemo(shell);

  std::printf("RDF-ANALYTICS shell — type 'help' for commands, "
              "'example products' to begin.\n");
  std::string line;
  while (true) {
    std::printf("rdfa> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!HandleLine(shell, line)) break;
  }
  return 0;
}
