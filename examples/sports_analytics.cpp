// The intro's sports-domain analytic query (§3.2.3): "total goals and
// clean sheets of players of Spanish and England UEFA Champions League
// teams from 2021 to 2022" — formulated through clicks over a football KG,
// plus a per-position breakdown with a column chart.
//
// Build & run:  ./build/examples/sports_analytics

#include <cstdio>
#include <string>

#include "analytics/session.h"
#include "viz/chart.h"
#include "viz/table_render.h"
#include "workload/sports.h"

namespace {

const std::string kSp = rdfa::workload::kSportsNs;

void Check(const rdfa::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "action failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rdfa::rdf::Graph g;
  rdfa::workload::SportsOptions opt;
  opt.players = 2000;
  opt.teams = 24;
  rdfa::workload::GenerateSportsKg(&g, opt);
  std::printf("football KG: %zu triples\n\n", g.size());

  // --- The intro query ---------------------------------------------------
  // Spanish teams: the FS session cannot OR two values in one click, but a
  // second session handles England; here we show Spain and leave the union
  // to the HIFUN multi-root/AF machinery. To keep it one query we group by
  // league country and read off the Spain and England rows.
  {
    rdfa::analytics::AnalyticsSession s(&g);
    Check(s.fs().ClickClass(kSp + "Player"));
    // Seasons 2021-2022: filter on season values via two clicks is OR-less;
    // instead restrict to the 2021 season for the demo's first run.
    rdfa::analytics::GroupingSpec by_country;
    by_country.path = {kSp + "playsFor", kSp + "inLeague",
                       kSp + "leagueCountry"};
    Check(s.ClickGroupBy(by_country));
    rdfa::analytics::MeasureSpec goals;
    goals.path = {kSp + "goals"};
    goals.ops = {rdfa::hifun::AggOp::kSum};
    Check(s.ClickAggregate(goals));
    auto af = s.Execute();
    Check(af.status());
    std::printf("total goals by league country (read Spain/England rows):\n%s\n",
                rdfa::viz::RenderTable(af.value().table()).c_str());
  }

  // --- Clean sheets of Spanish-league players in season 2021 -------------
  {
    rdfa::analytics::AnalyticsSession s(&g);
    Check(s.fs().ClickClass(kSp + "Player"));
    Check(s.fs().ClickValue(
        {{kSp + "playsFor"}, {kSp + "inLeague"}, {kSp + "leagueCountry"}},
        rdfa::rdf::Term::Iri(kSp + "Spain")));
    Check(s.fs().ClickValue({{kSp + "season"}},
                            rdfa::rdf::Term::Iri(kSp + "season2021")));
    rdfa::analytics::GroupingSpec by_team;
    by_team.path = {kSp + "playsFor"};
    Check(s.ClickGroupBy(by_team));
    rdfa::analytics::MeasureSpec m;
    m.path = {kSp + "cleanSheets"};
    m.ops = {rdfa::hifun::AggOp::kSum, rdfa::hifun::AggOp::kCount};
    Check(s.ClickAggregate(m));
    auto af = s.Execute();
    Check(af.status());
    std::printf("clean sheets of Spanish-league teams, season 2021:\n%s\n",
                rdfa::viz::RenderTable(af.value().table()).c_str());
  }

  // --- Goals by position, column chart ------------------------------------
  {
    rdfa::analytics::AnalyticsSession s(&g);
    Check(s.fs().ClickClass(kSp + "Player"));
    rdfa::analytics::GroupingSpec by_pos;
    by_pos.path = {kSp + "position"};
    Check(s.ClickGroupBy(by_pos));
    rdfa::analytics::MeasureSpec m;
    m.path = {kSp + "goals"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    Check(s.ClickAggregate(m));
    auto af = s.Execute();
    Check(af.status());
    auto series = rdfa::viz::SeriesFromTable(
        af.value().table(), af.value().table().columns()[0],
        af.value().table().columns()[1]);
    Check(series.status());
    std::printf("average goals per player-season by position:\n%s",
                rdfa::viz::RenderColumnChart(series.value(), 10).c_str());
  }
  return 0;
}
