// Faceted exploration of the dissertation's running example: reproduces the
// transition-marker trees of Figs 5.4 and 5.5 as text, then walks a session
// (class click, path expansion, value click, back).
//
// Build & run:  ./build/examples/faceted_exploration

#include <cstdio>
#include <string>

#include "fs/session.h"
#include "rdf/rdfs.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

void PrintClassTree(const rdfa::rdf::Graph& g,
                    const std::vector<rdfa::fs::ClassFacet>& facets,
                    int indent) {
  for (const auto& f : facets) {
    std::printf("%*s%s (%zu)\n", indent, "",
                rdfa::viz::LocalName(g.terms().Get(f.cls).lexical()).c_str(),
                f.count);
    PrintClassTree(g, f.children, indent + 2);
  }
}

void PrintPropertyFacets(const rdfa::rdf::Graph& g,
                         const std::vector<rdfa::fs::PropertyFacet>& facets) {
  for (const auto& f : facets) {
    std::printf("by %s%s (%zu)\n", f.prop.inverse ? "^" : "",
                rdfa::viz::LocalName(f.prop.iri).c_str(), f.values.size());
    for (const auto& vc : f.values) {
      const rdfa::rdf::Term& v = g.terms().Get(vc.value);
      std::printf("  %s (%zu)\n",
                  (v.is_literal() ? v.lexical()
                                  : rdfa::viz::LocalName(v.lexical()))
                      .c_str(),
                  vc.count);
    }
  }
}

}  // namespace

int main() {
  rdfa::rdf::Graph g;
  rdfa::workload::BuildRunningExample(&g);
  size_t inferred = rdfa::rdf::MaterializeRdfsClosure(&g);
  std::printf("running example: %zu triples (%zu inferred)\n\n", g.size(),
              inferred);

  rdfa::fs::Session session(&g);

  std::printf("=== Fig 5.4 (a/b): class-based transition markers ===\n");
  PrintClassTree(g, session.ClassFacets(), 0);

  auto check = [](const rdfa::Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "action failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };

  std::printf("\n=== click Laptop: Fig 5.4 (c) property markers ===\n");
  check(session.ClickClass(kEx + "Laptop"));
  PrintPropertyFacets(g, session.PropertyFacets());

  std::printf("\n=== Fig 5.5 (b): path expansion manufacturer > origin ===\n");
  rdfa::fs::PropertyFacet origin = session.ExpandPath(
      {{kEx + "manufacturer"}, {kEx + "origin"}});
  PrintPropertyFacets(g, {origin});

  std::printf("\n=== click USA at the end of the path (Eq. 5.1) ===\n");
  check(session.ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                           rdfa::rdf::Term::Iri(kEx + "USA")));
  std::printf("%s\n", session.RenderText().c_str());

  std::printf("=== intention of the state (Table 5.1 SPARQL) ===\n%s\n\n",
              session.current().intent.ToSparql().c_str());

  std::printf("=== Back() ===\n");
  check(session.Back());
  std::printf("back to: %s (%zu objects)\n",
              session.current().intent.ToString().c_str(),
              session.current().ext.size());
  return 0;
}
