// Quickstart: load RDF, ask a SPARQL question, ask the same question in
// HIFUN, and let the library translate it for you.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "hifun/hifun_parser.h"
#include "rdf/graph.h"
#include "rdf/turtle.h"
#include "sparql/executor.h"
#include "translator/translator.h"
#include "viz/table_render.h"

int main() {
  // 1. Load a small product catalog from Turtle.
  rdfa::rdf::Graph graph;
  rdfa::Status st = rdfa::rdf::ParseTurtle(R"(
    @prefix ex: <http://e.org/> .
    ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL   ; ex:price 900 .
    ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL   ; ex:price 1000 .
    ex:l3 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:price 820 .
    ex:l4 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:price 780 .
  )",
                                           &graph);
  if (!st.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu triples\n\n", graph.size());

  // 2. Plain SPARQL.
  auto table = rdfa::sparql::ExecuteQueryString(&graph, R"(
    PREFIX ex: <http://e.org/>
    SELECT ?m (AVG(?p) AS ?avgPrice) (COUNT(?x) AS ?n)
    WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . }
    GROUP BY ?m ORDER BY DESC(?avgPrice)
  )");
  if (!table.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("SPARQL: average price by manufacturer\n%s\n",
              rdfa::viz::RenderTable(table.value()).c_str());

  // 3. The same analytic question in HIFUN: (manufacturer, price, AVG).
  rdfa::rdf::PrefixMap prefixes;
  auto hifun_query = rdfa::hifun::ParseHifun(
      "(manufacturer, price, AVG+COUNT) over Laptop", prefixes,
      "http://e.org/");
  if (!hifun_query.ok()) {
    std::fprintf(stderr, "hifun parse failed: %s\n",
                 hifun_query.status().ToString().c_str());
    return 1;
  }
  auto sparql_text = rdfa::translator::TranslateToSparql(hifun_query.value());
  if (!sparql_text.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 sparql_text.status().ToString().c_str());
    return 1;
  }
  std::printf("HIFUN %s translates to:\n%s\n\n",
              hifun_query.value().ToString().c_str(),
              sparql_text.value().c_str());

  auto answer = rdfa::sparql::ExecuteQueryString(&graph, sparql_text.value());
  if (!answer.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("answer:\n%s", rdfa::viz::RenderTable(answer.value()).c_str());
  return 0;
}
